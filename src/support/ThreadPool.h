//===- support/ThreadPool.h - Fixed parallel-for worker pool ---*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed worker pool exposing a single blocking parallelFor primitive,
/// used to run embarrassingly parallel experiment work (isolated-runtime
/// measurement, independent workload replays) concurrently. There is
/// deliberately no work stealing and no futures: tasks are claimed from
/// a shared atomic index and each writes results keyed by its own index,
/// so outputs are ordered by input — never by completion — and results
/// are bit-identical to the serial loop regardless of pool size.
///
/// Pool size defaults to the hardware concurrency and can be pinned with
/// the `PBT_THREADS` environment variable (1 forces fully serial
/// execution on the calling thread).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_THREADPOOL_H
#define PBT_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pbt {

/// Fixed pool of worker threads driving blocking parallel-for batches.
class ThreadPool {
public:
  /// \p ThreadCount total threads including the caller; 0 picks
  /// PBT_THREADS or the hardware concurrency.
  explicit ThreadPool(unsigned ThreadCount = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Total threads participating in a batch (workers + calling thread).
  unsigned size() const { return static_cast<unsigned>(Workers.size()) + 1; }

  /// Runs Body(I) for every I in [0, N), distributing indices over the
  /// pool; returns when all N calls finished. The calling thread
  /// participates. Reentrant calls (from inside a Body) and single-
  /// threaded pools run inline. The first exception thrown by a Body is
  /// rethrown here after the batch drains.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// The process-wide pool, created on first use.
  static ThreadPool &global();

private:
  /// State of one parallelFor batch. Body/Size are immutable after
  /// publication; a worker that snapshots a stale batch simply finds
  /// its indices exhausted and goes back to sleep, so generations can
  /// never contaminate each other.
  struct Batch {
    const std::function<void(size_t)> *Body = nullptr;
    size_t Size = 0;
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Completed{0};
    std::exception_ptr FirstError; ///< Guarded by the pool mutex.
  };

  void workerLoop();
  void runBatch(Batch &B);

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WorkCv;
  std::condition_variable DoneCv;
  std::shared_ptr<Batch> Current; ///< Guarded by the pool mutex.
  uint64_t Generation = 0;
  bool Stopping = false;
};

} // namespace pbt

#endif // PBT_SUPPORT_THREADPOOL_H

//===- support/FileLock.h - Advisory flock with bounded retry --*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An RAII advisory file lock over `flock(2)`, the concurrency
/// primitive under `exp/CacheStore`'s single-writer / shared-reader
/// per-key protocol. Design points:
///
///  - **Never blocks unboundedly.** Acquisition is a bounded loop of
///    non-blocking attempts with exponential backoff and seeded jitter
///    (the caller supplies the `Rng`, so backoff schedules are
///    deterministic for a given seed). Exhausting the attempts returns
///    false and the caller degrades — a reader treats it as a miss, a
///    writer skips the write-back.
///  - **Crash-released.** `flock` locks die with the holding process's
///    descriptor, so a `kill -9` mid-critical-section can never strand
///    a lock the way lockfile-existence protocols do.
///  - **Advisory only.** The lock serializes cooperating processes for
///    efficiency (one writer rebuilds, readers wait out in-flight
///    writes, gc skips live entries); *correctness* rests on
///    `writeFileAtomic`'s temp-file + rename protocol, which keeps the
///    store safe even against non-cooperating or raced access.
///  - **Degrades on unopenable lock files.** A read-only store
///    directory (a team-prebuilt cache) cannot create `.lck` files;
///    shared acquisitions fall back to a read-only descriptor when the
///    file exists, and `openFailed()` tells callers apart from
///    contention so readers can proceed locklessly.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_FILELOCK_H
#define PBT_SUPPORT_FILELOCK_H

#include "support/Rng.h"

#include <string>

namespace pbt {

/// RAII advisory lock on a dedicated lock file (see file comment).
class FileLock {
public:
  enum class Mode {
    Shared,   ///< Many readers may hold it together.
    Exclusive ///< A writer excludes readers and other writers.
  };

  FileLock() = default;
  ~FileLock() { release(); }

  FileLock(const FileLock &) = delete;
  FileLock &operator=(const FileLock &) = delete;
  FileLock(FileLock &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  FileLock &operator=(FileLock &&Other) noexcept {
    if (this != &Other) {
      release();
      Fd = Other.Fd;
      Other.Fd = -1;
    }
    return *this;
  }

  /// Opens (creating if absent) \p Path and tries to take the \p M
  /// lock up to \p MaxAttempts times. Between attempts sleeps an
  /// exponentially growing delay (capped at 5 ms) plus jitter drawn
  /// from \p Backoff. Returns false — with no lock held — when the
  /// attempts are exhausted or the file cannot be opened.
  bool acquire(const std::string &Path, Mode M, unsigned MaxAttempts,
               Rng &Backoff, unsigned BaseDelayMicros = 200);

  /// One non-blocking attempt, no retry and no sleep.
  bool tryAcquire(const std::string &Path, Mode M);

  bool held() const { return Fd >= 0; }

  /// True when the last acquire/tryAcquire failed because the lock
  /// file could not even be opened (e.g. a read-only store directory),
  /// as opposed to the lock being contended. Callers use it to pick
  /// the right degradation: a reader on an unopenable lock falls back
  /// to a lockless read (atomic rename keeps reads safe without it),
  /// while contention degrades to a miss / skipped write-back.
  bool openFailed() const { return OpenFailed; }

  /// Unlocks and closes; a no-op when nothing is held.
  void release();

private:
  int Fd = -1;
  bool OpenFailed = false;
};

} // namespace pbt

#endif // PBT_SUPPORT_FILELOCK_H

//===- support/Table.h - Fixed-width console table printer -----*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-width table builder used by the benchmark harnesses to
/// print rows in the same shape as the paper's tables and figure series.
/// Library code renders into a string; only executables print it.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_TABLE_H
#define PBT_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace pbt {

/// Accumulates rows of cells and renders them with padded, aligned columns.
class Table {
public:
  /// Creates a table whose first row is the header \p Columns.
  explicit Table(std::vector<std::string> Columns);

  /// Appends a data row; pads or truncates to the header width.
  void addRow(std::vector<std::string> Cells);

  /// Formats a double with \p Precision fractional digits.
  static std::string fmt(double Value, int Precision = 2);

  /// Formats an integer with thousands separators (e.g. "33,636").
  static std::string fmtInt(long long Value);

  /// Renders the table, header first, then a rule, then the rows.
  std::string render() const;

  /// Column headers / data rows, for structured (JSON) emission.
  const std::vector<std::string> &columns() const { return Header; }
  const std::vector<std::vector<std::string>> &rows() const { return Rows; }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace pbt

#endif // PBT_SUPPORT_TABLE_H

//===- support/Env.h - Environment-driven experiment scaling ---*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers that let the benchmark harnesses scale their simulated duration
/// from the environment. `PBT_BENCH_SCALE` (a positive double, default
/// 1.0; `PBT_SCALE` is accepted as a legacy alias) multiplies simulated
/// workload horizons; `PBT_BENCH_SCALE=0.1` gives a quick smoke run,
/// `PBT_BENCH_SCALE=1` the full paper-shaped experiment.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_ENV_H
#define PBT_SUPPORT_ENV_H

#include <cstdint>

namespace pbt {

/// Returns the value of `PBT_BENCH_SCALE` (falling back to the legacy
/// `PBT_SCALE`) clamped to [0.01, 100], or \p Default when unset or
/// unparsable.
double envScale(double Default = 1.0);

/// Returns the value of the integer environment variable \p Name, or
/// \p Default when unset or unparsable.
int64_t envInt(const char *Name, int64_t Default);

/// Returns the value of the floating-point environment variable
/// \p Name, or \p Default when unset or unparsable. (Used by the
/// driver's `PBT_EXP_TIMEOUT_SECONDS` per-experiment timeout.)
double envDouble(const char *Name, double Default);

/// Returns the value of the environment variable \p Name, or nullptr
/// when unset. (`PBT_CACHE_DIR` selects the persistent suite-cache
/// directory — see exp/CacheStore; `PBT_FAULTS` arms the
/// fault-injection seam — see support/FaultInjection.)
const char *envString(const char *Name);

} // namespace pbt

#endif // PBT_SUPPORT_ENV_H

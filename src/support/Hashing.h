//===- support/Hashing.h - Stable content-hash helpers ---------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small deterministic hashing helpers used to build *content hashes* of
/// configuration structs (TechniqueSpec, MachineConfig, ...) for cache
/// keys. The functions are stable across processes and platforms of equal
/// endianness — they depend only on the hashed values, never on pointer
/// identity — so hashes are reproducible within a run and suitable for
/// keying the experiment harness's suite cache. Not cryptographic.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_HASHING_H
#define PBT_SUPPORT_HASHING_H

#include "support/Binary.h"

#include <cstdint>
#include <cstring>
#include <string>

namespace pbt {

/// Mixes \p Value into the running hash \p Seed (boost::hash_combine
/// shape with a 64-bit golden-ratio constant).
inline uint64_t hashCombine(uint64_t Seed, uint64_t Value) {
  // splitmix64 finalizer on the value, then combine.
  Value += 0x9E3779B97F4A7C15ULL;
  Value = (Value ^ (Value >> 30)) * 0xBF58476D1CE4E5B9ULL;
  Value = (Value ^ (Value >> 27)) * 0x94D049BB133111EBULL;
  Value ^= Value >> 31;
  return Seed ^ (Value + 0x9E3779B97F4A7C15ULL + (Seed << 6) + (Seed >> 2));
}

/// Hashes a double by bit pattern. -0.0 is canonicalized to +0.0 so
/// numerically equal configurations hash equally.
inline uint64_t hashDouble(double V) {
  if (V == 0.0)
    V = 0.0; // Collapse -0.0.
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  return Bits;
}

/// FNV-1a over the bytes of \p S (delegates to the byte-level primitive
/// in support/Binary.h).
inline uint64_t hashString(const std::string &S) {
  return fnv1a(S.data(), S.size());
}

} // namespace pbt

#endif // PBT_SUPPORT_HASHING_H

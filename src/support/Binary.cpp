//===- support/Binary.cpp - Bit-exact binary serialization ----------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Binary.h"

#include <cstdio>

#include <unistd.h>

using namespace pbt;

bool pbt::writeFileAtomic(const std::string &Path, const std::string &Data) {
  // The temporary lives in the same directory so the rename is atomic
  // (never crosses a filesystem boundary); the pid keeps concurrent
  // writers of the same path from clobbering each other's half-written
  // bytes.
  std::string Tmp = Path + ".tmp." + std::to_string(getpid());
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = Data.empty() ? 0 : std::fwrite(Data.data(), 1, Data.size(), F);
  // fclose unconditionally (no short-circuit): a short write must not
  // leak the descriptor.
  bool Closed = std::fclose(F) == 0;
  bool Ok = Written == Data.size() && Closed;
  if (!Ok) {
    std::remove(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}

bool pbt::readFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  Out.clear();
  char Buf[1 << 16];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, Got);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}

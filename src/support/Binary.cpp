//===- support/Binary.cpp - Bit-exact binary serialization ----------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Binary.h"

#include "support/FaultInjection.h"

#include <cstdio>

#include <fcntl.h>
#include <unistd.h>

using namespace pbt;

namespace {

/// fsyncs \p Path's parent directory so a just-renamed entry survives a
/// power cut (the rename itself lives in directory metadata).
/// Best-effort: some filesystems refuse directory fsync; the rename is
/// still crash-atomic, only its durability window widens.
void fsyncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (Fd < 0)
    return;
  ::fsync(Fd);
  ::close(Fd);
}

} // namespace

bool pbt::writeFileAtomic(const std::string &Path, const std::string &Data) {
  FaultInjection &FI = FaultInjection::instance();

  // The temporary lives in the same directory so the rename is atomic
  // (never crosses a filesystem boundary); the pid keeps concurrent
  // writers of the same path from clobbering each other's half-written
  // bytes, and lets the store's startup sweep tell stale temps (dead
  // pid) from in-flight ones.
  std::string Tmp = Path + ".tmp." + std::to_string(getpid());
  if (FI.failOp("atomic.open"))
    return false;
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return false;

  // The payload goes out in two halves with a crash point between, so
  // injected crashes leave a genuinely torn temp file behind. A
  // "short write" fault models the same tear without dying: the temp
  // stays truncated on disk (for the sweep to collect) and the write
  // reports failure.
  size_t Half = Data.size() / 2;
  size_t Written =
      Half == 0 ? 0 : std::fwrite(Data.data(), 1, Half, F);
  FI.crashPoint("atomic.mid_write");
  bool Truncate = FI.truncateWrite("atomic.write");
  if (!Truncate && Data.size() > Half)
    Written += std::fwrite(Data.data() + Half, 1, Data.size() - Half, F);

  // A torn write must never be renamed into place: flush and fsync the
  // payload BEFORE the rename, so the entry is durable the instant it
  // becomes visible.
  bool Flushed = std::fflush(F) == 0;
  bool Synced = !FI.failOp("atomic.fsync") && ::fsync(::fileno(F)) == 0;
  // fclose unconditionally (no short-circuit): a short write must not
  // leak the descriptor.
  bool Closed = std::fclose(F) == 0;
  if (Truncate) // Leave the torn temp for the sweep, as a crash would.
    return false;
  if (Written != Data.size() || !Flushed || !Synced || !Closed) {
    std::remove(Tmp.c_str());
    return false;
  }

  FI.crashPoint("atomic.before_rename"); // Complete temp, not yet visible.
  if (FI.tornRename("atomic.rename")) {
    // Model a non-atomic rename (or a crash inside one): the
    // destination receives only a prefix of the data, the temp is
    // gone, and the writer believes it succeeded. Readers must
    // quarantine the torn entry.
    std::FILE *Torn = std::fopen(Path.c_str(), "wb");
    if (Torn) {
      if (Half > 0)
        std::fwrite(Data.data(), 1, Half, Torn);
      std::fclose(Torn);
    }
    std::remove(Tmp.c_str());
    return true;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return false;
  }
  FI.crashPoint("atomic.after_rename"); // Entry visible and complete.
  fsyncParentDir(Path);
  return true;
}

bool pbt::readFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  Out.clear();
  char Buf[1 << 16];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, Got);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}

//===- support/Env.cpp - Environment-driven experiment scaling -----------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Env.h"

#include <cstdlib>

using namespace pbt;

double pbt::envScale(double Default) {
  const char *Raw = std::getenv("PBT_BENCH_SCALE");
  if (!Raw)
    Raw = std::getenv("PBT_SCALE"); // Legacy alias.
  if (!Raw)
    return Default;
  char *End = nullptr;
  double Value = std::strtod(Raw, &End);
  if (End == Raw || Value <= 0)
    return Default;
  if (Value < 0.01)
    return 0.01;
  if (Value > 100)
    return 100;
  return Value;
}

const char *pbt::envString(const char *Name) { return std::getenv(Name); }

int64_t pbt::envInt(const char *Name, int64_t Default) {
  const char *Raw = std::getenv(Name);
  if (!Raw)
    return Default;
  char *End = nullptr;
  long long Value = std::strtoll(Raw, &End, 10);
  if (End == Raw)
    return Default;
  return Value;
}

double pbt::envDouble(const char *Name, double Default) {
  const char *Raw = std::getenv(Name);
  if (!Raw)
    return Default;
  char *End = nullptr;
  double Value = std::strtod(Raw, &End);
  if (End == Raw)
    return Default;
  return Value;
}

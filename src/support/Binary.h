//===- support/Binary.h - Bit-exact binary serialization -------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian binary serialization helpers for the experiment layer's
/// persistent artifacts (exp/CacheStore). The encoding is fixed-width and
/// field-by-field — no struct memcpy, so padding and ABI never leak into
/// a file — and doubles are stored by bit pattern, so every numeric table
/// round-trips bit-identically. BinaryReader is fully bounds-checked: any
/// out-of-range or malformed read latches a failure flag (subsequent
/// reads return zero values) instead of touching memory out of bounds,
/// which is what lets CacheStore treat truncated or corrupt files as
/// plain cache misses.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_BINARY_H
#define PBT_SUPPORT_BINARY_H

#include <cstdint>
#include <cstring>
#include <string>

namespace pbt {

/// Append-only little-endian encoder over a growable byte buffer.
class BinaryWriter {
public:
  void u8(uint8_t Value) { Buf.push_back(static_cast<char>(Value)); }

  void u32(uint32_t Value) {
    for (int Shift = 0; Shift < 32; Shift += 8)
      Buf.push_back(static_cast<char>((Value >> Shift) & 0xFF));
  }

  void u64(uint64_t Value) {
    for (int Shift = 0; Shift < 64; Shift += 8)
      Buf.push_back(static_cast<char>((Value >> Shift) & 0xFF));
  }

  void i32(int32_t Value) { u32(static_cast<uint32_t>(Value)); }

  /// Stores the IEEE-754 bit pattern, so values round-trip bit-exactly
  /// (including -0.0, infinities, and NaN payloads).
  void f64(double Value) {
    uint64_t Bits;
    std::memcpy(&Bits, &Value, sizeof(Bits));
    u64(Bits);
  }

  /// Length-prefixed (u32) byte string.
  void str(const std::string &Value) {
    u32(static_cast<uint32_t>(Value.size()));
    Buf.append(Value);
  }

  const std::string &buffer() const { return Buf; }

private:
  std::string Buf;
};

/// Bounds-checked decoder over a byte range. The first malformed read
/// latches failed(); all subsequent reads return zero values.
class BinaryReader {
public:
  BinaryReader(const void *Data, size_t Size)
      : Ptr(static_cast<const uint8_t *>(Data)), Len(Size) {}
  explicit BinaryReader(const std::string &Data)
      : BinaryReader(Data.data(), Data.size()) {}

  uint8_t u8() {
    if (!take(1))
      return 0;
    return Ptr[Pos++];
  }

  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t Value = 0;
    for (int Shift = 0; Shift < 32; Shift += 8)
      Value |= static_cast<uint32_t>(Ptr[Pos++]) << Shift;
    return Value;
  }

  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t Value = 0;
    for (int Shift = 0; Shift < 64; Shift += 8)
      Value |= static_cast<uint64_t>(Ptr[Pos++]) << Shift;
    return Value;
  }

  int32_t i32() { return static_cast<int32_t>(u32()); }

  /// Reads an element count and rejects values above \p Limit or larger
  /// than the remaining bytes could possibly encode (each element needs
  /// at least \p ElemBytes), so a corrupt length prefix can never drive
  /// an allocation bigger than the file itself. Returns 0 (with
  /// failed() latched) when out of range.
  uint32_t count(uint32_t Limit, size_t ElemBytes = 1) {
    uint32_t N = u32();
    if (N > Limit ||
        static_cast<uint64_t>(N) * ElemBytes > remaining()) {
      Fail = true;
      return 0;
    }
    return N;
  }

  double f64() {
    uint64_t Bits = u64();
    double Value;
    std::memcpy(&Value, &Bits, sizeof(Value));
    return Value;
  }

  std::string str() {
    uint32_t Size = u32();
    if (!take(Size))
      return std::string();
    std::string Value(reinterpret_cast<const char *>(Ptr + Pos), Size);
    Pos += Size;
    return Value;
  }

  /// Remaining unread bytes.
  size_t remaining() const { return Fail ? 0 : Len - Pos; }

  /// True once any read ran past the end (or markFailed() was called).
  bool failed() const { return Fail; }

  /// Latch a semantic validation failure (e.g. an out-of-range count),
  /// poisoning all subsequent reads.
  void markFailed() { Fail = true; }

private:
  bool take(size_t Count) {
    if (Fail || Len - Pos < Count) {
      Fail = true;
      return false;
    }
    return true;
  }

  const uint8_t *Ptr;
  size_t Len;
  size_t Pos = 0;
  bool Fail = false;
};

/// FNV-1a over \p Size bytes (payload checksums; stable across runs).
/// The one byte-level FNV primitive in support/ — Hashing.h's
/// hashString delegates here, and persisted-file checksums depend on
/// these constants staying fixed.
inline uint64_t fnv1a(const void *Data, size_t Size) {
  const uint8_t *Bytes = static_cast<const uint8_t *>(Data);
  uint64_t H = 0xCBF29CE484222325ULL;
  for (size_t I = 0; I < Size; ++I) {
    H ^= Bytes[I];
    H *= 0x100000001B3ULL;
  }
  return H;
}

/// Writes \p Data to \p Path atomically and durably: the bytes go to a
/// sibling temporary file (`<path>.tmp.<pid>`) that is fsynced and then
/// renamed into place, with a best-effort parent-directory fsync after
/// the rename — so concurrent readers never observe a half-written
/// file, and a crash (or power cut) at any instant leaves either the
/// old entry, the new entry, or a stale temp file, never a torn
/// destination. Every step routes through `support/FaultInjection`, so
/// tests can inject EIO, short writes, torn renames, and crash points.
/// Returns false on I/O failure.
bool writeFileAtomic(const std::string &Path, const std::string &Data);

/// Reads the whole file at \p Path into \p Out; false when unreadable.
bool readFile(const std::string &Path, std::string &Out);

} // namespace pbt

#endif // PBT_SUPPORT_BINARY_H

//===- support/Statistics.h - Summary statistics helpers -------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics used by the benchmark harnesses: five-number
/// box-plot summaries (paper Fig. 3), means, and geometric means.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_STATISTICS_H
#define PBT_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace pbt {

/// Five-number summary of a sample, as drawn in a box plot: the box spans
/// [Q1, Q3] with a line at the median; whiskers extend to min and max.
struct BoxSummary {
  double Min = 0;
  double Q1 = 0;
  double Median = 0;
  double Q3 = 0;
  double Max = 0;
  double Mean = 0;
  size_t Count = 0;
};

/// Computes the five-number summary of \p Values. Quartiles use linear
/// interpolation between order statistics (type-7, the numpy default).
/// An empty input yields an all-zero summary with Count == 0.
BoxSummary summarize(std::vector<double> Values);

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double> &Values);

/// Sample standard deviation; 0 for samples of size < 2.
double stddev(const std::vector<double> &Values);

/// Quantile \p Q in [0,1] of \p Values with linear interpolation.
/// Asserts on empty input.
double quantile(std::vector<double> Values, double Q);

/// Percentile \p Pct in [0,100] of \p Values: quantile(Pct / 100),
/// linear interpolation between order statistics (type-7), fully
/// deterministic. Asserts on empty input and out-of-range Pct. The one
/// definition shared by the latency and fairness metrics.
double percentile(std::vector<double> Values, double Pct);

/// percentile() over an ALREADY SORTED sample, without copying or
/// re-sorting — for callers reading several percentiles off one sort.
/// Asserts the same preconditions (plus sortedness, in debug builds).
double percentileSorted(const std::vector<double> &Sorted, double Pct);

/// Geometric mean; asserts all values are positive. 0 for empty input.
double geomean(const std::vector<double> &Values);

} // namespace pbt

#endif // PBT_SUPPORT_STATISTICS_H

//===- support/Statistics.h - Summary statistics helpers -------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics used by the benchmark harnesses: five-number
/// box-plot summaries (paper Fig. 3), means, and geometric means.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_STATISTICS_H
#define PBT_SUPPORT_STATISTICS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbt {

/// How percentile statistics are computed from a sample stream.
/// Recorded explicitly in every artifact metrics block so downstream
/// comparisons never mix the two silently.
enum class PercentileMode : uint8_t {
  /// Buffer every observation and read percentiles off one sort —
  /// O(n) memory, bit-reproducible, the default for every artifact
  /// that is compared byte for byte.
  Exact,
  /// Stream observations through P2Quantile sketches — O(1) memory in
  /// job count (long-horizon scenario runs), deterministic but
  /// approximate (documented error bounds; see P2Quantile).
  Streaming,
};

/// Stable artifact name of \p Mode ("exact" / "streaming").
const char *percentileModeName(PercentileMode Mode);

/// Five-number summary of a sample, as drawn in a box plot: the box spans
/// [Q1, Q3] with a line at the median; whiskers extend to min and max.
struct BoxSummary {
  double Min = 0;
  double Q1 = 0;
  double Median = 0;
  double Q3 = 0;
  double Max = 0;
  double Mean = 0;
  size_t Count = 0;
};

/// Computes the five-number summary of \p Values. Quartiles use linear
/// interpolation between order statistics (type-7, the numpy default).
/// An empty input yields an all-zero summary with Count == 0.
BoxSummary summarize(std::vector<double> Values);

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double> &Values);

/// Sample standard deviation; 0 for samples of size < 2.
double stddev(const std::vector<double> &Values);

/// Quantile \p Q in [0,1] of \p Values with linear interpolation.
/// Asserts on empty input.
double quantile(std::vector<double> Values, double Q);

/// Percentile \p Pct in [0,100] of \p Values: quantile(Pct / 100),
/// linear interpolation between order statistics (type-7), fully
/// deterministic. Asserts on empty input and out-of-range Pct. The one
/// definition shared by the latency and fairness metrics.
double percentile(std::vector<double> Values, double Pct);

/// percentile() over an ALREADY SORTED sample, without copying or
/// re-sorting — for callers reading several percentiles off one sort.
/// Asserts the same preconditions (plus sortedness, in debug builds).
double percentileSorted(const std::vector<double> &Sorted, double Pct);

/// Geometric mean; asserts all values are positive. 0 for empty input.
double geomean(const std::vector<double> &Values);

/// Streaming quantile estimator: the P² algorithm (Jain & Chlamtac,
/// CACM 1985). Five markers track the target quantile plus the sample
/// extremes and the quantile's neighbourhood, adjusted by piecewise-
/// parabolic interpolation as observations arrive — O(1) memory and
/// O(1) time per observation, independent of stream length, which is
/// what makes long-horizon scenario metrics O(1) in job count
/// (metrics/Latency.h, PercentileMode::Streaming).
///
/// Fully deterministic: the estimate is a pure function of the
/// observation sequence (no randomization, no buffers to flush), so
/// identical replays produce bit-identical streamed metrics. For
/// samples of at most five observations the estimate is EXACT — the
/// markers still hold the sorted sample and value() reads the type-7
/// interpolated percentile off it, matching percentile().
///
/// Accuracy on larger streams is that of the published algorithm:
/// exact for constant streams, and within a few percent of the sample
/// range for adversarial (sorted, bimodal) streams —
/// tests/fastreplay_test.cpp pins the documented tolerances. Exact
/// percentiles (PercentileMode::Exact) remain the default everywhere
/// artifacts are compared byte for byte.
class P2Quantile {
public:
  /// \p Pct in [0,100], e.g. 95 for the P95 estimator.
  explicit P2Quantile(double Pct);

  /// Feeds one observation.
  void add(double X);

  /// Current estimate; 0 before any observation.
  double value() const;

  /// Observations fed so far.
  size_t count() const { return Count; }

private:
  double Q;            ///< Target quantile fraction in [0,1].
  double Heights[5];   ///< Marker heights (estimates).
  double Positions[5]; ///< Actual marker positions (1-based ranks).
  double Desired[5];   ///< Desired marker positions.
  double Increment[5]; ///< Desired-position increments per observation.
  size_t Count = 0;
};

} // namespace pbt

#endif // PBT_SUPPORT_STATISTICS_H

//===- support/Statistics.h - Summary statistics helpers -------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptive statistics used by the benchmark harnesses: five-number
/// box-plot summaries (paper Fig. 3), means, and geometric means.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SUPPORT_STATISTICS_H
#define PBT_SUPPORT_STATISTICS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbt {
class BinaryReader;
class BinaryWriter;
} // namespace pbt

namespace pbt {

/// How percentile statistics are computed from a sample stream.
/// Recorded explicitly in every artifact metrics block so downstream
/// comparisons never mix the two silently.
enum class PercentileMode : uint8_t {
  /// Buffer every observation and read percentiles off one sort —
  /// O(n) memory, bit-reproducible, the default for every artifact
  /// that is compared byte for byte.
  Exact,
  /// Stream observations through P2Quantile sketches — O(1) memory in
  /// job count (long-horizon scenario runs), deterministic but
  /// approximate (documented error bounds; see P2Quantile).
  Streaming,
};

/// Stable artifact name of \p Mode ("exact" / "streaming").
const char *percentileModeName(PercentileMode Mode);

/// Five-number summary of a sample, as drawn in a box plot: the box spans
/// [Q1, Q3] with a line at the median; whiskers extend to min and max.
struct BoxSummary {
  double Min = 0;
  double Q1 = 0;
  double Median = 0;
  double Q3 = 0;
  double Max = 0;
  double Mean = 0;
  size_t Count = 0;
};

/// Computes the five-number summary of \p Values. Quartiles use linear
/// interpolation between order statistics (type-7, the numpy default).
/// An empty input yields an all-zero summary with Count == 0.
BoxSummary summarize(std::vector<double> Values);

/// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double> &Values);

/// Sample standard deviation; 0 for samples of size < 2.
double stddev(const std::vector<double> &Values);

/// Quantile \p Q in [0,1] of \p Values with linear interpolation.
/// Asserts on empty input.
double quantile(std::vector<double> Values, double Q);

/// Percentile \p Pct in [0,100] of \p Values: quantile(Pct / 100),
/// linear interpolation between order statistics (type-7), fully
/// deterministic. Asserts on empty input and out-of-range Pct. The one
/// definition shared by the latency and fairness metrics.
double percentile(std::vector<double> Values, double Pct);

/// percentile() over an ALREADY SORTED sample, without copying or
/// re-sorting — for callers reading several percentiles off one sort.
/// Asserts the same preconditions (plus sortedness, in debug builds).
double percentileSorted(const std::vector<double> &Sorted, double Pct);

/// Geometric mean; asserts all values are positive. 0 for empty input.
double geomean(const std::vector<double> &Values);

/// Streaming quantile estimator: the P² algorithm (Jain & Chlamtac,
/// CACM 1985). Five markers track the target quantile plus the sample
/// extremes and the quantile's neighbourhood, adjusted by piecewise-
/// parabolic interpolation as observations arrive — O(1) memory and
/// O(1) time per observation, independent of stream length, which is
/// what makes long-horizon scenario metrics O(1) in job count
/// (metrics/Latency.h, PercentileMode::Streaming).
///
/// Fully deterministic: the estimate is a pure function of the
/// observation sequence (no randomization, no buffers to flush), so
/// identical replays produce bit-identical streamed metrics. For
/// samples of at most five observations the estimate is EXACT — the
/// markers still hold the sorted sample and value() reads the type-7
/// interpolated percentile off it, matching percentile().
///
/// Accuracy on larger streams is that of the published algorithm:
/// exact for constant streams, and within a few percent of the sample
/// range for adversarial (sorted, bimodal) streams —
/// tests/fastreplay_test.cpp pins the documented tolerances. Exact
/// percentiles (PercentileMode::Exact) remain the default everywhere
/// artifacts are compared byte for byte.
class P2Quantile {
public:
  /// \p Pct in [0,100], e.g. 95 for the P95 estimator.
  explicit P2Quantile(double Pct);

  /// Feeds one observation.
  void add(double X);

  /// Current estimate; 0 before any observation.
  double value() const;

  /// Observations fed so far.
  size_t count() const { return Count; }

private:
  double Q;            ///< Target quantile fraction in [0,1].
  double Heights[5];   ///< Marker heights (estimates).
  double Positions[5]; ///< Actual marker positions (1-based ranks).
  double Desired[5];   ///< Desired marker positions.
  double Increment[5]; ///< Desired-position increments per observation.
  size_t Count = 0;
};

/// Deterministic mergeable streaming quantile sketch: the buffered
/// merging t-digest (Dunning's MergingDigest, simplified to weight-1
/// inputs). Observations buffer until the buffer fills, then buffer and
/// centroids are sorted together by (mean, weight) and compacted in one
/// left-to-right greedy pass under the k-size bound
///
///   merged weight <= 4 * N * q * (1 - q) / Compression
///
/// where q is the merged centroid's center-rank fraction. The bound
/// pinches to < 1 at the tails, so extreme observations survive as
/// singleton centroids and tail percentiles stay near-exact; at the
/// median it allows ~N/Compression-weight centroids, capping memory at
/// O(Compression) however long the stream runs.
///
/// Properties the sharded experiment fabric depends on (all asserted in
/// tests/fastreplay_test.cpp):
///
///  - Deterministic: the digest is a pure function of the observation
///    sequence (sort + greedy pass; no randomization, no clocks).
///  - EXACT below 2 x Compression observations: the bound stays < 2
///    everywhere, no pair ever merges, every observation is its own
///    centroid, and quantile() reduces exactly to the type-7
///    interpolation of percentile().
///  - Mergeable, order-independently: merged() gathers every input's
///    centroids, sorts them by (mean, weight), and compacts once, so
///    the result is identical under any permutation of the inputs.
///    Callers still canonicalize merge order (the fabric sorts by shard
///    index) so that future weighted variants cannot drift.
///  - Single-input merge is the identity: merged({D}) returns a copy of
///    D, never a re-compaction.
///
/// serialize()/deserialize() round-trip the compacted centroid list
/// bit-exactly (support/Binary f64 bit patterns).
class TDigest {
public:
  /// \p Compression bounds the compacted centroid count (~2x this) and
  /// sets the exactness threshold (exact below 2 x Compression
  /// observations). 256 keeps partial-artifact sketches a few KiB.
  explicit TDigest(double Compression = 256);

  /// Feeds one weight-1 observation.
  void add(double X);

  /// Observations fed so far (total weight).
  size_t count() const { return static_cast<size_t>(Total); }

  /// Quantile \p Q in [0,1] by center-rank interpolation between
  /// centroid means; 0 before any observation. For an all-singleton
  /// digest this is exactly the type-7 percentile of the sample.
  double quantile(double Q) const;

  /// quantile(Pct / 100).
  double percentile(double Pct) const { return quantile(Pct / 100.0); }

  /// Appends the compacted digest to \p W (bit-exact round-trip).
  void serialize(BinaryWriter &W) const;

  /// Reads a digest serialized by serialize(); false (and an
  /// unspecified digest) on malformed input.
  bool deserialize(BinaryReader &R);

  /// Merges \p Parts into one digest. All parts must share one
  /// Compression. A single part is returned as an identical copy; more
  /// parts are gathered, sorted by (mean, weight), and compacted once,
  /// so the result is independent of the order of \p Parts.
  static TDigest merged(const std::vector<const TDigest *> &Parts);

private:
  struct Centroid {
    double Mean = 0;
    double Weight = 0;
  };

  /// Folds Buffer into Centroids (sort by (mean, weight), one greedy
  /// compaction pass). Const because readers must see buffered
  /// observations; only Centroids/Buffer mutate, never Total.
  void flush() const;
  static std::vector<Centroid> compact(std::vector<Centroid> All,
                                       double Total, double Compression);

  double Compression;
  double Total = 0;
  mutable std::vector<Centroid> Centroids; ///< Sorted by (mean, weight).
  mutable std::vector<double> Buffer;      ///< Pending raw observations.
};

} // namespace pbt

#endif // PBT_SUPPORT_STATISTICS_H

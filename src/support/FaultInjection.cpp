//===- support/FaultInjection.cpp - Seeded filesystem fault seam ----------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Env.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include <unistd.h>

using namespace pbt;

namespace {

double parseProbability(const std::string &Key, const std::string &Value) {
  char *End = nullptr;
  double P = std::strtod(Value.c_str(), &End);
  if (End == Value.c_str() || *End != '\0' || P < 0 || P > 1)
    throw std::invalid_argument("PBT_FAULTS: " + Key +
                                " wants a probability in [0,1], got '" +
                                Value + "'");
  return P;
}

} // namespace

FaultInjection &FaultInjection::instance() {
  static FaultInjection *FI = [] {
    auto *I = new FaultInjection();
    if (const char *Spec = envString("PBT_FAULTS"))
      if (*Spec) {
        // The first call can come from anywhere (a store op deep in a
        // gc pass, a test fixture) with no catch in sight; a typo'd
        // env var must be a clean diagnostic, never std::terminate
        // from a throwing static initializer.
        try {
          I->configure(parse(Spec));
        } catch (const std::invalid_argument &E) {
          std::fprintf(stderr, "%s\n", E.what());
          std::exit(2);
        }
      }
    return I;
  }();
  return *FI;
}

FaultConfig FaultInjection::parse(const std::string &Spec) {
  FaultConfig C;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    std::string Item = Spec.substr(Pos, Comma - Pos);
    Pos = Comma + 1;
    if (Item.empty())
      continue;
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos)
      throw std::invalid_argument("PBT_FAULTS: expected key=value, got '" +
                                  Item + "'");
    std::string Key = Item.substr(0, Eq);
    std::string Value = Item.substr(Eq + 1);
    if (Key == "seed") {
      char *End = nullptr;
      C.Seed = std::strtoull(Value.c_str(), &End, 10);
      if (End == Value.c_str() || *End != '\0')
        throw std::invalid_argument("PBT_FAULTS: bad seed '" + Value + "'");
    } else if (Key == "eio") {
      C.EioP = parseProbability(Key, Value);
    } else if (Key == "short_write") {
      C.ShortWriteP = parseProbability(Key, Value);
    } else if (Key == "torn_rename") {
      C.TornRenameP = parseProbability(Key, Value);
    } else if (Key == "vanish") {
      C.VanishP = parseProbability(Key, Value);
    } else if (Key == "lock_open") {
      C.LockOpenP = parseProbability(Key, Value);
    } else if (Key == "crash_at") {
      size_t Colon = Value.find(':');
      C.CrashPoint = Value.substr(0, Colon);
      C.CrashAtHit = 1;
      if (Colon != std::string::npos) {
        std::string Hit = Value.substr(Colon + 1);
        char *End = nullptr;
        unsigned long N = std::strtoul(Hit.c_str(), &End, 10);
        if (End == Hit.c_str() || *End != '\0' || N == 0)
          throw std::invalid_argument("PBT_FAULTS: bad crash_at hit '" +
                                      Hit + "'");
        C.CrashAtHit = static_cast<uint32_t>(N);
      }
      if (C.CrashPoint.empty())
        throw std::invalid_argument("PBT_FAULTS: crash_at wants a point name");
    } else {
      throw std::invalid_argument("PBT_FAULTS: unknown key '" + Key + "'");
    }
  }
  return C;
}

void FaultInjection::configure(const FaultConfig &C) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Cfg = C;
  Stream = Rng(C.Seed);
  Decisions = 0;
  CrashHits = 0;
  Armed.store(Cfg.enabled(), std::memory_order_relaxed);
}

FaultConfig FaultInjection::config() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Cfg;
}

bool FaultInjection::roll(double P) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ++Decisions;
  if (P <= 0)
    return false;
  // 53-bit uniform in [0,1) from the seeded stream.
  double U = static_cast<double>(Stream.next() >> 11) * 0x1.0p-53;
  return U < P;
}

bool FaultInjection::failOp(const char *) {
  if (!armed())
    return false;
  return roll(config().EioP);
}

bool FaultInjection::truncateWrite(const char *) {
  if (!armed())
    return false;
  return roll(config().ShortWriteP);
}

bool FaultInjection::tornRename(const char *) {
  if (!armed())
    return false;
  return roll(config().TornRenameP);
}

bool FaultInjection::failLockOpen(const char *) {
  if (!armed())
    return false;
  return roll(config().LockOpenP);
}

bool FaultInjection::maybeVanish(const char *, const std::string &Path) {
  if (!armed())
    return false;
  if (!roll(config().VanishP))
    return false;
  return std::remove(Path.c_str()) == 0;
}

void FaultInjection::crashPoint(const char *Point) {
  if (!armed())
    return;
  bool Crash = false;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Decisions;
    if (!Cfg.CrashPoint.empty() && Cfg.CrashPoint == Point)
      Crash = ++CrashHits == Cfg.CrashAtHit;
  }
  if (Crash) {
    // The kill -9 exit status: die without flushing buffers, running
    // atexit handlers, or unwinding — the closest in-process model of
    // a hard crash. flock(2) locks are released by the kernel.
    std::fprintf(stderr, "FaultInjection: crashing at '%s'\n", Point);
    ::_exit(137);
  }
}

uint64_t FaultInjection::decisions() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Decisions;
}

//===- support/Statistics.cpp - Summary statistics helpers ---------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "support/Binary.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;

const char *pbt::percentileModeName(PercentileMode Mode) {
  return Mode == PercentileMode::Exact ? "exact" : "streaming";
}

static double interpolatedQuantile(const std::vector<double> &Sorted,
                                   double Q) {
  assert(!Sorted.empty() && "quantile of empty sample");
  if (Sorted.size() == 1)
    return Sorted.front();
  double Pos = Q * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Sorted[Lo] + Frac * (Sorted[Hi] - Sorted[Lo]);
}

BoxSummary pbt::summarize(std::vector<double> Values) {
  BoxSummary Box;
  if (Values.empty())
    return Box;
  std::sort(Values.begin(), Values.end());
  Box.Count = Values.size();
  Box.Min = Values.front();
  Box.Max = Values.back();
  Box.Q1 = interpolatedQuantile(Values, 0.25);
  Box.Median = interpolatedQuantile(Values, 0.50);
  Box.Q3 = interpolatedQuantile(Values, 0.75);
  Box.Mean = mean(Values);
  return Box;
}

double pbt::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double Sum = 0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double pbt::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0;
  double M = mean(Values);
  double Acc = 0;
  for (double V : Values)
    Acc += (V - M) * (V - M);
  return std::sqrt(Acc / static_cast<double>(Values.size() - 1));
}

double pbt::quantile(std::vector<double> Values, double Q) {
  assert(Q >= 0.0 && Q <= 1.0 && "quantile fraction out of range");
  std::sort(Values.begin(), Values.end());
  return interpolatedQuantile(Values, Q);
}

double pbt::percentile(std::vector<double> Values, double Pct) {
  assert(Pct >= 0.0 && Pct <= 100.0 && "percentile out of range");
  return quantile(std::move(Values), Pct / 100.0);
}

double pbt::percentileSorted(const std::vector<double> &Sorted,
                             double Pct) {
  assert(Pct >= 0.0 && Pct <= 100.0 && "percentile out of range");
  assert(std::is_sorted(Sorted.begin(), Sorted.end()) &&
         "percentileSorted needs a sorted sample");
  return interpolatedQuantile(Sorted, Pct / 100.0);
}

P2Quantile::P2Quantile(double Pct) : Q(Pct / 100.0) {
  assert(Pct >= 0.0 && Pct <= 100.0 && "percentile out of range");
  for (int I = 0; I < 5; ++I) {
    Heights[I] = 0;
    Positions[I] = static_cast<double>(I + 1);
  }
  // Marker 2 tracks the target quantile; 1 and 3 its midpoints to the
  // extremes; 0 and 4 the sample minimum and maximum.
  Desired[0] = 1;
  Desired[1] = 1 + 2 * Q;
  Desired[2] = 1 + 4 * Q;
  Desired[3] = 3 + 2 * Q;
  Desired[4] = 5;
  Increment[0] = 0;
  Increment[1] = Q / 2;
  Increment[2] = Q;
  Increment[3] = (1 + Q) / 2;
  Increment[4] = 1;
}

void P2Quantile::add(double X) {
  if (Count < 5) {
    // Bootstrap: the markers hold the sorted sample itself.
    Heights[Count++] = X;
    std::sort(Heights, Heights + Count);
    return;
  }
  ++Count;

  // Locate the cell and update the extremes.
  int Cell;
  if (X < Heights[0]) {
    Heights[0] = X;
    Cell = 0;
  } else if (X >= Heights[4]) {
    Heights[4] = X;
    Cell = 3;
  } else {
    Cell = 0;
    while (Cell < 3 && X >= Heights[Cell + 1])
      ++Cell;
  }

  for (int I = Cell + 1; I < 5; ++I)
    Positions[I] += 1;
  for (int I = 0; I < 5; ++I)
    Desired[I] += Increment[I];

  // Nudge interior markers toward their desired positions, adjusting
  // heights by the piecewise-parabolic (P²) formula, falling back to
  // linear interpolation when the parabola would de-sort the markers.
  for (int I = 1; I <= 3; ++I) {
    double Diff = Desired[I] - Positions[I];
    if ((Diff >= 1 && Positions[I + 1] - Positions[I] > 1) ||
        (Diff <= -1 && Positions[I - 1] - Positions[I] < -1)) {
      double D = Diff < 0 ? -1.0 : 1.0;
      double Hp = Heights[I + 1];
      double Hm = Heights[I - 1];
      double Np = Positions[I + 1];
      double Nm = Positions[I - 1];
      double N = Positions[I];
      double Parabolic =
          Heights[I] +
          D / (Np - Nm) *
              ((N - Nm + D) * (Hp - Heights[I]) / (Np - N) +
               (Np - N - D) * (Heights[I] - Hm) / (N - Nm));
      if (Hm < Parabolic && Parabolic < Hp)
        Heights[I] = Parabolic;
      else
        Heights[I] = Heights[I] + D * (Heights[I + (int)D] - Heights[I]) /
                                      (Positions[I + (int)D] - N);
      Positions[I] += D;
    }
  }
}

double P2Quantile::value() const {
  if (Count == 0)
    return 0;
  if (Count <= 5) {
    // Exact small-sample percentile off the sorted bootstrap buffer,
    // matching percentile() (type-7 interpolation).
    std::vector<double> Sorted(Heights, Heights + Count);
    return interpolatedQuantile(Sorted, Q);
  }
  return Heights[2];
}

TDigest::TDigest(double Compression) : Compression(Compression) {
  assert(Compression >= 8 && "t-digest compression too small");
  // Buffering 2x the compression amortizes compaction to O(log) sorts
  // per observation while keeping peak memory O(Compression).
  Buffer.reserve(static_cast<size_t>(2 * Compression));
}

void TDigest::add(double X) {
  Buffer.push_back(X);
  Total += 1;
  if (Buffer.size() >= static_cast<size_t>(2 * Compression))
    flush();
}

std::vector<TDigest::Centroid>
TDigest::compact(std::vector<Centroid> All, double Total,
                 double Compression) {
  // The one ordering every path (add-side flush, multi-digest merge)
  // compacts under: mean, then weight. Ties in both fields merge to an
  // identical centroid whichever comes first, so the compacted digest
  // is a pure function of the multiset of input centroids.
  std::sort(All.begin(), All.end(),
            [](const Centroid &A, const Centroid &B) {
              return A.Mean != B.Mean ? A.Mean < B.Mean
                                      : A.Weight < B.Weight;
            });
  std::vector<Centroid> Out;
  Out.reserve(All.size());
  double SoFar = 0; // Weight fully to the left of Out.back().
  for (const Centroid &C : All) {
    if (!Out.empty()) {
      double W = Out.back().Weight + C.Weight;
      double Q = (SoFar + W / 2) / Total;
      double Limit = 4 * Total * Q * (1 - Q) / Compression;
      if (W <= Limit) {
        Out.back().Mean =
            (Out.back().Mean * Out.back().Weight + C.Mean * C.Weight) / W;
        Out.back().Weight = W;
        continue;
      }
      SoFar += Out.back().Weight;
    }
    Out.push_back(C);
  }
  return Out;
}

void TDigest::flush() const {
  if (Buffer.empty())
    return;
  std::vector<Centroid> All = Centroids;
  All.reserve(All.size() + Buffer.size());
  for (double X : Buffer)
    All.push_back({X, 1});
  Buffer.clear();
  Centroids = compact(std::move(All), Total, Compression);
}

double TDigest::quantile(double Q) const {
  assert(Q >= 0.0 && Q <= 1.0 && "quantile fraction out of range");
  flush();
  if (Centroids.empty())
    return 0;
  if (Centroids.size() == 1)
    return Centroids.front().Mean;
  // Type-7 target rank, interpolated between centroid center ranks
  // cum + (w - 1) / 2 — for singleton centroids the center rank of the
  // i-th centroid is exactly i, so this reduces to percentile().
  double R = Q * (Total - 1);
  double Cum = 0;
  double PrevCenter = (Centroids.front().Weight - 1) / 2;
  if (R <= PrevCenter)
    return Centroids.front().Mean;
  for (size_t I = 1; I < Centroids.size(); ++I) {
    Cum += Centroids[I - 1].Weight;
    double Center = Cum + (Centroids[I].Weight - 1) / 2;
    if (R <= Center) {
      double Frac = (R - PrevCenter) / (Center - PrevCenter);
      return Centroids[I - 1].Mean +
             Frac * (Centroids[I].Mean - Centroids[I - 1].Mean);
    }
    PrevCenter = Center;
  }
  return Centroids.back().Mean;
}

void TDigest::serialize(BinaryWriter &W) const {
  flush();
  W.f64(Compression);
  W.f64(Total);
  W.u32(static_cast<uint32_t>(Centroids.size()));
  for (const Centroid &C : Centroids) {
    W.f64(C.Mean);
    W.f64(C.Weight);
  }
}

bool TDigest::deserialize(BinaryReader &R) {
  Compression = R.f64();
  Total = R.f64();
  uint32_t N = R.count(1u << 22, 16);
  Centroids.clear();
  Buffer.clear();
  Centroids.reserve(N);
  double WeightSum = 0;
  bool WeightsOk = true;
  for (uint32_t I = 0; I < N; ++I) {
    Centroid C;
    C.Mean = R.f64();
    C.Weight = R.f64();
    WeightsOk = WeightsOk && C.Weight > 0 && std::isfinite(C.Mean);
    WeightSum += C.Weight;
    Centroids.push_back(C);
  }
  // Beyond wire-format checks, enforce the digest invariants a crafted
  // or corrupt-but-checksummed stream could violate: Compression in a
  // sane range (an oversized value would overflow add()'s buffer
  // sizing), strictly positive finite centroids, and Total equal to
  // the centroid weight mass (serialize() flushes the buffer, so after
  // a round trip the centroids carry every observation; weights are
  // integer counts, hence the sum is exact). NaNs fail every
  // comparison, so non-finite headers are rejected too.
  return !R.failed() && Compression >= 8 && Compression <= 1e6 &&
         Total >= 0 && WeightsOk && WeightSum == Total;
}

TDigest TDigest::merged(const std::vector<const TDigest *> &Parts) {
  assert(!Parts.empty() && "merging zero digests");
  // Single-shard merge is the identity: copy, never re-compact (a
  // second compaction pass could legally merge further).
  if (Parts.size() == 1) {
    Parts.front()->flush();
    return *Parts.front();
  }
  TDigest Out(Parts.front()->Compression);
  std::vector<Centroid> All;
  for (const TDigest *Part : Parts) {
    assert(Part->Compression == Out.Compression &&
           "merging digests of different compression");
    Part->flush();
    All.insert(All.end(), Part->Centroids.begin(), Part->Centroids.end());
    Out.Total += Part->Total;
  }
  if (Out.Total > 0)
    Out.Centroids = compact(std::move(All), Out.Total, Out.Compression);
  return Out;
}

double pbt::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double V : Values) {
    assert(V > 0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

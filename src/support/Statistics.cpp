//===- support/Statistics.cpp - Summary statistics helpers ---------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;

static double interpolatedQuantile(const std::vector<double> &Sorted,
                                   double Q) {
  assert(!Sorted.empty() && "quantile of empty sample");
  if (Sorted.size() == 1)
    return Sorted.front();
  double Pos = Q * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Sorted[Lo] + Frac * (Sorted[Hi] - Sorted[Lo]);
}

BoxSummary pbt::summarize(std::vector<double> Values) {
  BoxSummary Box;
  if (Values.empty())
    return Box;
  std::sort(Values.begin(), Values.end());
  Box.Count = Values.size();
  Box.Min = Values.front();
  Box.Max = Values.back();
  Box.Q1 = interpolatedQuantile(Values, 0.25);
  Box.Median = interpolatedQuantile(Values, 0.50);
  Box.Q3 = interpolatedQuantile(Values, 0.75);
  Box.Mean = mean(Values);
  return Box;
}

double pbt::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double Sum = 0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double pbt::stddev(const std::vector<double> &Values) {
  if (Values.size() < 2)
    return 0;
  double M = mean(Values);
  double Acc = 0;
  for (double V : Values)
    Acc += (V - M) * (V - M);
  return std::sqrt(Acc / static_cast<double>(Values.size() - 1));
}

double pbt::quantile(std::vector<double> Values, double Q) {
  assert(Q >= 0.0 && Q <= 1.0 && "quantile fraction out of range");
  std::sort(Values.begin(), Values.end());
  return interpolatedQuantile(Values, Q);
}

double pbt::percentile(std::vector<double> Values, double Pct) {
  assert(Pct >= 0.0 && Pct <= 100.0 && "percentile out of range");
  return quantile(std::move(Values), Pct / 100.0);
}

double pbt::percentileSorted(const std::vector<double> &Sorted,
                             double Pct) {
  assert(Pct >= 0.0 && Pct <= 100.0 && "percentile out of range");
  assert(std::is_sorted(Sorted.begin(), Sorted.end()) &&
         "percentileSorted needs a sorted sample");
  return interpolatedQuantile(Sorted, Pct / 100.0);
}

double pbt::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0;
  double LogSum = 0;
  for (double V : Values) {
    assert(V > 0 && "geomean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

//===- ir/Program.cpp - Procedures and whole programs --------------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include <cstdio>

using namespace pbt;

const char *pbt::instKindName(InstKind Kind) {
  switch (Kind) {
  case InstKind::IntAlu:
    return "int";
  case InstKind::FpAlu:
    return "fp";
  case InstKind::Load:
    return "load";
  case InstKind::Store:
    return "store";
  case InstKind::Branch:
    return "br";
  case InstKind::Call:
    return "call";
  case InstKind::Ret:
    return "ret";
  case InstKind::Syscall:
    return "sys";
  }
  return "?";
}

static bool fail(std::string *ErrorOut, const std::string &Message) {
  if (ErrorOut)
    *ErrorOut = Message;
  return false;
}

static std::string where(const Procedure &P, const BasicBlock &BB) {
  return P.Name + ":bb" + std::to_string(BB.Id);
}

bool pbt::verify(const Program &Prog, std::string *ErrorOut) {
  if (Prog.Procs.empty())
    return fail(ErrorOut, "program has no procedures");

  for (size_t PI = 0; PI < Prog.Procs.size(); ++PI) {
    const Procedure &P = Prog.Procs[PI];
    if (P.Id != PI)
      return fail(ErrorOut, "procedure id mismatch for " + P.Name);
    if (P.Blocks.empty())
      return fail(ErrorOut, "procedure " + P.Name + " has no blocks");

    for (size_t BI = 0; BI < P.Blocks.size(); ++BI) {
      const BasicBlock &BB = P.Blocks[BI];
      if (BB.Id != BI)
        return fail(ErrorOut, "block id mismatch in " + P.Name);

      for (uint32_t Succ : BB.Succs)
        if (Succ >= P.Blocks.size())
          return fail(ErrorOut,
                      "successor out of range at " + where(P, BB));

      switch (BB.Term) {
      case TermKind::Jump:
        if (BB.Succs.size() != 1)
          return fail(ErrorOut, "jump block needs 1 successor at " +
                                    where(P, BB));
        break;
      case TermKind::Loop:
        if (BB.Succs.size() != 2)
          return fail(ErrorOut, "loop latch needs 2 successors at " +
                                    where(P, BB));
        if (BB.Succs[0] == BB.Succs[1])
          return fail(ErrorOut, "loop latch successors must differ at " +
                                    where(P, BB));
        if (BB.TripCount < 1)
          return fail(ErrorOut, "loop trip count must be >= 1 at " +
                                    where(P, BB));
        break;
      case TermKind::Cond:
        if (BB.Succs.empty())
          return fail(ErrorOut, "cond block needs successors at " +
                                    where(P, BB));
        if (BB.TakenProb < 0.0 || BB.TakenProb > 1.0)
          return fail(ErrorOut, "cond probability out of range at " +
                                    where(P, BB));
        break;
      case TermKind::Ret:
        if (!BB.Succs.empty())
          return fail(ErrorOut, "return block must have no successors at " +
                                    where(P, BB));
        break;
      }

      for (size_t II = 0; II < BB.Insts.size(); ++II) {
        const Instruction &I = BB.Insts[II];
        if (I.Kind == InstKind::Call) {
          if (II + 1 != BB.Insts.size())
            return fail(ErrorOut, "call must terminate its block at " +
                                      where(P, BB));
          if (BB.Term != TermKind::Jump)
            return fail(ErrorOut,
                        "call block must have a jump continuation at " +
                            where(P, BB));
          if (I.Callee < 0 ||
              static_cast<size_t>(I.Callee) >= Prog.Procs.size())
            return fail(ErrorOut, "invalid call target at " + where(P, BB));
        }
        if (isMemoryKind(I.Kind) && I.MemRef < 0)
          return fail(ErrorOut,
                      "memory op without reference at " + where(P, BB));
      }
    }
  }
  return true;
}

std::string pbt::printProgram(const Program &Prog) {
  std::string Out = "program " + Prog.Name + "\n";
  char Buf[160];
  for (const Procedure &P : Prog.Procs) {
    Out += "  proc " + std::to_string(P.Id) + " " + P.Name + "\n";
    for (const BasicBlock &BB : P.Blocks) {
      const char *Term = "?";
      switch (BB.Term) {
      case TermKind::Jump:
        Term = "jump";
        break;
      case TermKind::Loop:
        Term = "loop";
        break;
      case TermKind::Cond:
        Term = "cond";
        break;
      case TermKind::Ret:
        Term = "ret";
        break;
      }
      std::snprintf(Buf, sizeof(Buf),
                    "    bb%u: %zu insts, %zu mem, %s ->", BB.Id, BB.size(),
                    BB.memOpCount(), Term);
      Out += Buf;
      for (uint32_t Succ : BB.Succs)
        Out += " bb" + std::to_string(Succ);
      if (BB.Term == TermKind::Loop)
        Out += " trip=" + std::to_string(BB.TripCount);
      int32_t Callee = BB.calleeOrNone();
      if (Callee >= 0)
        Out += " calls " + Prog.Procs[Callee].Name;
      Out += "\n";
    }
  }
  return Out;
}

//===- ir/Instruction.h - Abstract machine instruction ---------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction representation for the binary-level program model. The
/// paper operates on x86 binaries recovered with GNU Binutils; this
/// reproduction substitutes a compact abstract instruction set carrying
/// exactly the information the paper's analyses consume: the instruction
/// class (for instruction-mix features), an encoded size in bytes (for
/// space-overhead accounting), and a symbolic memory reference (for
/// reuse-distance-based cache estimation).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_IR_INSTRUCTION_H
#define PBT_IR_INSTRUCTION_H

#include <cassert>
#include <cstdint>

namespace pbt {

/// Instruction classes. Kept deliberately coarse: the paper's block-typing
/// features are built from "a combination of instruction types as well as a
/// rough estimate of cache behavior" (Sec. II-A3).
enum class InstKind : uint8_t {
  IntAlu,  ///< Integer arithmetic / logic.
  FpAlu,   ///< Floating-point arithmetic.
  Load,    ///< Memory read; carries a MemRef id.
  Store,   ///< Memory write; carries a MemRef id.
  Branch,  ///< Control transfer within the procedure.
  Call,    ///< Procedure call; carries a callee procedure id.
  Ret,     ///< Procedure return.
  Syscall, ///< System call (a special CFG node kind in the paper).
};

/// Returns true for Load/Store instructions.
inline bool isMemoryKind(InstKind Kind) {
  return Kind == InstKind::Load || Kind == InstKind::Store;
}

/// Returns a short mnemonic for \p Kind ("int", "fp", ...).
const char *instKindName(InstKind Kind);

/// A single abstract instruction.
///
/// MemRef identifies the 64-byte line the instruction touches, as an index
/// into a per-block symbolic address space; -1 when not a memory op.
/// Callee is the callee procedure id for Call instructions; -1 otherwise.
struct Instruction {
  InstKind Kind = InstKind::IntAlu;
  uint8_t SizeBytes = 3;
  int32_t MemRef = -1;
  int32_t Callee = -1;

  static Instruction intAlu(uint8_t Size = 3) {
    return {InstKind::IntAlu, Size, -1, -1};
  }
  static Instruction fpAlu(uint8_t Size = 4) {
    return {InstKind::FpAlu, Size, -1, -1};
  }
  static Instruction load(int32_t Ref, uint8_t Size = 4) {
    assert(Ref >= 0 && "loads require a memory reference");
    return {InstKind::Load, Size, Ref, -1};
  }
  static Instruction store(int32_t Ref, uint8_t Size = 4) {
    assert(Ref >= 0 && "stores require a memory reference");
    return {InstKind::Store, Size, Ref, -1};
  }
  static Instruction branch(uint8_t Size = 2) {
    return {InstKind::Branch, Size, -1, -1};
  }
  static Instruction call(int32_t CalleeProc, uint8_t Size = 5) {
    assert(CalleeProc >= 0 && "calls require a callee");
    return {InstKind::Call, Size, -1, CalleeProc};
  }
  static Instruction ret() { return {InstKind::Ret, 1, -1, -1}; }
  static Instruction syscall() { return {InstKind::Syscall, 2, -1, -1}; }
};

} // namespace pbt

#endif // PBT_IR_INSTRUCTION_H

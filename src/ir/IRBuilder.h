//===- ir/IRBuilder.h - Convenience program construction --------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builder used by tests and by the synthetic SPEC-like benchmark suite to
/// assemble programs. Instruction bodies are generated from declarative
/// InstMix specifications (instruction-class fractions plus a working-set
/// size), which is what gives blocks their distinguishable static features
/// and dynamic cache behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_IR_IRBUILDER_H
#define PBT_IR_IRBUILDER_H

#include "ir/Program.h"
#include "support/Rng.h"

#include <string>

namespace pbt {

/// Declarative description of a block body. Fractions are of the total
/// Count; the remainder after Fp/Load/Store/Branch is integer ALU work.
///
/// Memory behaviour follows a two-population model: a *hot* set of
/// HotLines 64-byte lines reused within every execution (cache hits for
/// any realistic cache), and a *cold* stream over ColdLines lines whose
/// steady-state reuse distance is the full footprint (hits only when the
/// effective cache holds ColdLines lines). ColdFrac of the memory
/// operations walk the cold stream; the rest touch the hot set. The
/// block's expected miss rate under a cache of C lines is therefore
/// approximately ColdFrac * [ColdLines > C].
struct InstMix {
  unsigned Count = 32;          ///< Number of instructions to emit.
  double FpFrac = 0.0;          ///< Fraction of floating-point ALU ops.
  double LoadFrac = 0.0;        ///< Fraction of loads.
  double StoreFrac = 0.0;       ///< Fraction of stores.
  double BranchFrac = 0.0;      ///< Fraction of (non-terminator) branches.
  unsigned HotLines = 8;        ///< Resident hot-set size in lines.
  double ColdFrac = 0.0;        ///< Fraction of memory ops that stream.
  unsigned ColdLines = 131072;  ///< Streaming footprint in lines (8 MiB).

  /// A compute-bound mix: almost all ALU, tiny resident working set.
  static InstMix compute(unsigned Count, double FpShare = 0.4);

  /// A memory-bound mix: load/store heavy; \p ColdFraction of memory
  /// operations stream over \p WorkingSetLines lines.
  static InstMix memory(unsigned Count, unsigned WorkingSetLines,
                        double ColdFraction = 0.05);
};

/// Incrementally builds a verified Program.
class IRBuilder {
public:
  explicit IRBuilder(std::string ProgramName, uint64_t Seed = 1);

  /// Adds an empty procedure; returns its id. The first procedure created
  /// is `main`.
  uint32_t createProc(std::string Name);

  /// Adds an empty block to \p Proc; returns its block id.
  uint32_t addBlock(uint32_t Proc);

  /// Appends a generated instruction body to a block.
  void appendMix(uint32_t Proc, uint32_t Block, const InstMix &Mix);

  /// Appends a call to \p Callee; must be the final append for the block,
  /// and the block must be given a Jump terminator (the continuation).
  void appendCall(uint32_t Proc, uint32_t Block, uint32_t Callee);

  /// Appends a syscall marker instruction.
  void appendSyscall(uint32_t Proc, uint32_t Block);

  /// Terminator setters.
  void setJump(uint32_t Proc, uint32_t Block, uint32_t Target);
  void setLoop(uint32_t Proc, uint32_t Latch, uint32_t BackTarget,
               uint32_t Exit, uint32_t TripCount);
  void setCond(uint32_t Proc, uint32_t Block, uint32_t Taken,
               uint32_t NotTaken, double TakenProb);
  void setRet(uint32_t Proc, uint32_t Block);

  /// Convenience: appends a single-block self-loop region to \p Proc:
  /// creates a body block carrying \p Mix that runs \p TripCount
  /// iterations, then jumps to a fresh empty join block, which is
  /// returned. \p From is wired to jump to the body.
  uint32_t addLoopRegion(uint32_t Proc, uint32_t From, const InstMix &Mix,
                         uint32_t TripCount);

  /// Access to the program under construction (e.g. for inspection).
  Program &program() { return Prog; }

  /// Finalizes terminator instructions, verifies, and moves the program
  /// out. Asserts on verification failure (builder misuse is a bug).
  Program take();

private:
  BasicBlock &block(uint32_t Proc, uint32_t Block);

  Program Prog;
  Rng Gen;
};

} // namespace pbt

#endif // PBT_IR_IRBUILDER_H

//===- ir/BasicBlock.h - CFG basic block ------------------------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic blocks use the classic definition the paper cites (Allen 1970):
/// single entry, single exit, no internal jumps. Each block additionally
/// carries *terminator behaviour* consumed by the execution engine, so the
/// same IR serves both the static analyses and the dynamic simulation:
///
///  - Jump: unconditional transfer to the single successor.
///  - Loop: the block is a loop latch; successor 0 is the back-edge target
///    and successor 1 the exit. Each dynamic entry to the loop runs
///    TripCount iterations before exiting.
///  - Cond: data-dependent branch; successor 0 is taken with probability
///    TakenProb, successor 1 otherwise (resolved by the process's RNG).
///  - Ret: procedure return (no successors).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_IR_BASICBLOCK_H
#define PBT_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbt {

/// Terminator behaviour of a block, used by the simulator to produce a
/// deterministic (seeded) dynamic trace.
enum class TermKind : uint8_t {
  Jump,
  Loop,
  Cond,
  Ret,
};

/// A basic block: a straight-line instruction sequence plus terminator
/// behaviour and successor list.
struct BasicBlock {
  /// Index of this block within its procedure.
  uint32_t Id = 0;

  std::vector<Instruction> Insts;

  TermKind Term = TermKind::Ret;

  /// Successor block ids within the same procedure. Meaning depends on
  /// Term; see the file comment.
  std::vector<uint32_t> Succs;

  /// Loop latches: iterations per dynamic loop entry (>= 1).
  uint32_t TripCount = 1;

  /// Cond blocks: probability of taking Succs[0].
  double TakenProb = 0.5;

  /// Declared streaming footprint, in 64-byte lines. Memory references
  /// that appear only once per block execution are interpreted as a
  /// streaming walk over a working set of this many lines: successive
  /// executions touch fresh lines and revisit a line only after the
  /// whole set has been traversed, so their steady-state reuse distance
  /// is StreamWorkingSet. 0 means all references are block-resident.
  uint32_t StreamWorkingSet = 0;

  /// Number of instructions in the block.
  size_t size() const { return Insts.size(); }

  /// Encoded size of the block in bytes (space-overhead accounting).
  uint64_t byteSize() const {
    uint64_t Bytes = 0;
    for (const Instruction &I : Insts)
      Bytes += I.SizeBytes;
    return Bytes;
  }

  /// Number of Load/Store instructions.
  size_t memOpCount() const {
    size_t N = 0;
    for (const Instruction &I : Insts)
      if (isMemoryKind(I.Kind))
        ++N;
    return N;
  }

  /// Returns the callee procedure id if the block ends in a call, else -1.
  int32_t calleeOrNone() const {
    if (Insts.empty())
      return -1;
    const Instruction &Last = Insts.back();
    return Last.Kind == InstKind::Call ? Last.Callee : -1;
  }
};

} // namespace pbt

#endif // PBT_IR_BASICBLOCK_H

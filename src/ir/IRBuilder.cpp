//===- ir/IRBuilder.cpp - Convenience program construction ---------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include <cassert>

using namespace pbt;

InstMix InstMix::compute(unsigned Count, double FpShare) {
  InstMix Mix;
  Mix.Count = Count;
  Mix.FpFrac = FpShare;
  Mix.LoadFrac = 0.05;
  Mix.StoreFrac = 0.02;
  Mix.BranchFrac = 0.05;
  Mix.HotLines = 8;
  Mix.ColdFrac = 0.0;
  return Mix;
}

InstMix InstMix::memory(unsigned Count, unsigned WorkingSetLines,
                        double ColdFraction) {
  InstMix Mix;
  Mix.Count = Count;
  Mix.FpFrac = 0.05;
  Mix.LoadFrac = 0.35;
  Mix.StoreFrac = 0.15;
  Mix.BranchFrac = 0.05;
  Mix.HotLines = 32;
  Mix.ColdFrac = ColdFraction;
  Mix.ColdLines = WorkingSetLines;
  return Mix;
}

IRBuilder::IRBuilder(std::string ProgramName, uint64_t Seed) : Gen(Seed) {
  Prog.Name = std::move(ProgramName);
}

uint32_t IRBuilder::createProc(std::string Name) {
  Procedure P;
  P.Id = static_cast<uint32_t>(Prog.Procs.size());
  P.Name = std::move(Name);
  Prog.Procs.push_back(std::move(P));
  return Prog.Procs.back().Id;
}

uint32_t IRBuilder::addBlock(uint32_t Proc) {
  assert(Proc < Prog.Procs.size() && "unknown procedure");
  Procedure &P = Prog.Procs[Proc];
  BasicBlock BB;
  BB.Id = static_cast<uint32_t>(P.Blocks.size());
  P.Blocks.push_back(std::move(BB));
  return P.Blocks.back().Id;
}

BasicBlock &IRBuilder::block(uint32_t Proc, uint32_t Block) {
  assert(Proc < Prog.Procs.size() && "unknown procedure");
  Procedure &P = Prog.Procs[Proc];
  assert(Block < P.Blocks.size() && "unknown block");
  return P.Blocks[Block];
}

void IRBuilder::appendMix(uint32_t Proc, uint32_t Block, const InstMix &Mix) {
  BasicBlock &BB = block(Proc, Block);
  assert(BB.calleeOrNone() < 0 && "cannot append after a call");

  // Emit a deterministic shuffle of the requested mix. Memory operations
  // cycle through the working set so that the steady-state reuse distance
  // equals the working-set size.
  unsigned NumFp = static_cast<unsigned>(Mix.FpFrac * Mix.Count);
  unsigned NumLoad = static_cast<unsigned>(Mix.LoadFrac * Mix.Count);
  unsigned NumStore = static_cast<unsigned>(Mix.StoreFrac * Mix.Count);
  unsigned NumBranch = static_cast<unsigned>(Mix.BranchFrac * Mix.Count);
  unsigned NumMem = NumLoad + NumStore;
  assert(NumFp + NumMem + NumBranch <= Mix.Count && "fractions exceed 1");
  unsigned NumInt = Mix.Count - NumFp - NumMem - NumBranch;

  std::vector<InstKind> Kinds;
  Kinds.reserve(Mix.Count);
  for (unsigned I = 0; I < NumInt; ++I)
    Kinds.push_back(InstKind::IntAlu);
  for (unsigned I = 0; I < NumFp; ++I)
    Kinds.push_back(InstKind::FpAlu);
  for (unsigned I = 0; I < NumLoad; ++I)
    Kinds.push_back(InstKind::Load);
  for (unsigned I = 0; I < NumStore; ++I)
    Kinds.push_back(InstKind::Store);
  for (unsigned I = 0; I < NumBranch; ++I)
    Kinds.push_back(InstKind::Branch);

  // Fisher-Yates with the builder RNG: interleaves classes while staying
  // deterministic for a given seed.
  for (size_t I = Kinds.size(); I > 1; --I) {
    size_t J = Gen.nextBelow(I);
    std::swap(Kinds[I - 1], Kinds[J]);
  }

  // Reference-id allocation. Hot ids repeat within the block (resident
  // reuse); cold ids are unique within the block and marked streaming via
  // StreamWorkingSet. Start past any ids used by earlier appends so the
  // populations stay disjoint.
  int32_t Base = 0;
  for (const Instruction &I : BB.Insts)
    if (isMemoryKind(I.Kind))
      Base = std::max(Base, I.MemRef + 1);

  // Clamp the hot set so every hot line is touched at least twice per
  // execution (that is what makes it hot).
  unsigned ExpectedCold = static_cast<unsigned>(Mix.ColdFrac * NumMem);
  unsigned NumHot = NumMem - std::min(ExpectedCold, NumMem);
  unsigned HotSet = std::max(1u, std::min(Mix.HotLines, NumHot / 2));

  uint32_t HotCursor = 0;
  int32_t ColdCursor = Base + static_cast<int32_t>(HotSet);
  double ColdAcc = 0;
  auto NextMemRef = [&]() {
    ColdAcc += Mix.ColdFrac;
    if (ColdAcc >= 1.0 && Mix.ColdLines > 0) {
      ColdAcc -= 1.0;
      BB.StreamWorkingSet = std::max(BB.StreamWorkingSet, Mix.ColdLines);
      return ColdCursor++;
    }
    return Base + static_cast<int32_t>(HotCursor++ % HotSet);
  };

  for (InstKind Kind : Kinds) {
    switch (Kind) {
    case InstKind::IntAlu:
      BB.Insts.push_back(Instruction::intAlu());
      break;
    case InstKind::FpAlu:
      BB.Insts.push_back(Instruction::fpAlu());
      break;
    case InstKind::Load:
      BB.Insts.push_back(Instruction::load(NextMemRef()));
      break;
    case InstKind::Store:
      BB.Insts.push_back(Instruction::store(NextMemRef()));
      break;
    case InstKind::Branch:
      BB.Insts.push_back(Instruction::branch());
      break;
    case InstKind::Call:
    case InstKind::Ret:
    case InstKind::Syscall:
      assert(false && "unexpected generated kind");
      break;
    }
  }
}

void IRBuilder::appendCall(uint32_t Proc, uint32_t Block, uint32_t Callee) {
  BasicBlock &BB = block(Proc, Block);
  assert(BB.calleeOrNone() < 0 && "block already calls");
  BB.Insts.push_back(Instruction::call(static_cast<int32_t>(Callee)));
}

void IRBuilder::appendSyscall(uint32_t Proc, uint32_t Block) {
  BasicBlock &BB = block(Proc, Block);
  assert(BB.calleeOrNone() < 0 && "cannot append after a call");
  BB.Insts.push_back(Instruction::syscall());
}

void IRBuilder::setJump(uint32_t Proc, uint32_t Block, uint32_t Target) {
  BasicBlock &BB = block(Proc, Block);
  BB.Term = TermKind::Jump;
  BB.Succs = {Target};
}

void IRBuilder::setLoop(uint32_t Proc, uint32_t Latch, uint32_t BackTarget,
                        uint32_t Exit, uint32_t TripCount) {
  BasicBlock &BB = block(Proc, Latch);
  BB.Term = TermKind::Loop;
  BB.Succs = {BackTarget, Exit};
  BB.TripCount = TripCount < 1 ? 1 : TripCount;
}

void IRBuilder::setCond(uint32_t Proc, uint32_t Block, uint32_t Taken,
                        uint32_t NotTaken, double TakenProb) {
  BasicBlock &BB = block(Proc, Block);
  BB.Term = TermKind::Cond;
  BB.Succs = {Taken, NotTaken};
  BB.TakenProb = TakenProb;
}

void IRBuilder::setRet(uint32_t Proc, uint32_t Block) {
  BasicBlock &BB = block(Proc, Block);
  BB.Term = TermKind::Ret;
  BB.Succs.clear();
}

uint32_t IRBuilder::addLoopRegion(uint32_t Proc, uint32_t From,
                                  const InstMix &Mix, uint32_t TripCount) {
  uint32_t Body = addBlock(Proc);
  uint32_t Join = addBlock(Proc);
  appendMix(Proc, Body, Mix);
  setJump(Proc, From, Body);
  setLoop(Proc, Body, Body, Join, TripCount);
  return Join;
}

Program IRBuilder::take() {
  // Materialize terminator instructions so byte sizes and instruction
  // counts reflect the control transfers.
  for (Procedure &P : Prog.Procs) {
    for (BasicBlock &BB : P.Blocks) {
      switch (BB.Term) {
      case TermKind::Jump:
        // A trailing call falls through to its continuation; everything
        // else needs an explicit jump.
        if (BB.calleeOrNone() < 0)
          BB.Insts.push_back(Instruction::branch());
        break;
      case TermKind::Loop:
      case TermKind::Cond:
        BB.Insts.push_back(Instruction::branch());
        break;
      case TermKind::Ret:
        if (BB.Insts.empty() || BB.Insts.back().Kind != InstKind::Ret)
          BB.Insts.push_back(Instruction::ret());
        break;
      }
    }
  }

  std::string Error;
  bool Ok = verify(Prog, &Error);
  (void)Ok;
  assert(Ok && "IRBuilder produced an invalid program");
  return std::move(Prog);
}

//===- ir/Program.h - Procedures and whole programs ------------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Program is a set of procedures, each a CFG of basic blocks. Programs
/// stand in for the stripped x86 binaries the paper instruments; the
/// verifier (verify()) enforces the structural invariants the execution
/// engine and the static analyses rely on.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_IR_PROGRAM_H
#define PBT_IR_PROGRAM_H

#include "ir/BasicBlock.h"

#include <string>
#include <vector>

namespace pbt {

/// A procedure: an intra-procedural CFG whose entry is block 0.
struct Procedure {
  uint32_t Id = 0;
  std::string Name;
  std::vector<BasicBlock> Blocks;

  const BasicBlock &entry() const { return Blocks.front(); }

  size_t instructionCount() const {
    size_t N = 0;
    for (const BasicBlock &BB : Blocks)
      N += BB.size();
    return N;
  }

  uint64_t byteSize() const {
    uint64_t Bytes = 0;
    for (const BasicBlock &BB : Blocks)
      Bytes += BB.byteSize();
    return Bytes;
  }
};

/// A whole program. Procedure 0 is `main` by convention.
struct Program {
  std::string Name;
  std::vector<Procedure> Procs;

  const Procedure &main() const { return Procs.front(); }

  size_t instructionCount() const {
    size_t N = 0;
    for (const Procedure &P : Procs)
      N += P.instructionCount();
    return N;
  }

  /// Encoded program size in bytes (the "original binary size" used for
  /// the paper's Fig. 3 space-overhead measurement).
  uint64_t byteSize() const {
    uint64_t Bytes = 0;
    for (const Procedure &P : Procs)
      Bytes += P.byteSize();
    return Bytes;
  }

  /// Total number of basic blocks across all procedures.
  size_t blockCount() const {
    size_t N = 0;
    for (const Procedure &P : Procs)
      N += P.Blocks.size();
    return N;
  }
};

/// Checks structural invariants; on failure writes a diagnostic to
/// \p ErrorOut (when non-null) and returns false. Invariants:
///  - every procedure has at least one block and block ids equal indices;
///  - successor ids are in range for their procedure;
///  - terminator arity: Jump=1 succ, Loop=2 succs (distinct), Cond>=1,
///    Ret=0; Loop trip counts >= 1; Cond probabilities in [0,1];
///  - Call instructions appear only as the last instruction of a block
///    whose terminator is Jump (the successor is the return continuation);
///  - call targets are valid procedure ids.
bool verify(const Program &Prog, std::string *ErrorOut = nullptr);

/// Renders a human-readable CFG listing of \p Prog (one line per block).
std::string printProgram(const Program &Prog);

} // namespace pbt

#endif // PBT_IR_PROGRAM_H

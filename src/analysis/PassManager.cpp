//===- analysis/PassManager.cpp - Static-pipeline pass manager ------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/PassManager.h"

#include "analysis/Dominators.h"
#include "analysis/NaturalLoops.h"
#include "core/ErrorInjection.h"
#include "core/Instrument.h"
#include "obs/Clock.h"
#include "sim/CostModel.h"
#include "sim/FlatImage.h"
#include "support/Env.h"
#include "support/ThreadPool.h"
#include "workload/Runner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <tuple>

using namespace pbt;

ProgramPass::~ProgramPass() = default;
bool ProgramPass::doInitialization(PipelineContext &) { return false; }
bool ProgramPass::doFinalization(PipelineContext &) { return false; }

PassManager::PassManager() = default;
PassManager::~PassManager() = default;

void PassManager::add(std::unique_ptr<ProgramPass> Pass) {
  Passes.push_back(std::move(Pass));
}

//===----------------------------------------------------------------------===//
// Verify-IR toggle and cumulative stats
//===----------------------------------------------------------------------===//

namespace {

/// -1 = unset (consult the environment on first query), 0/1 = forced.
std::atomic<int> VerifyIRState{-1};

/// Process-wide accumulation of per-pass stats across pipeline runs.
struct CumulativeStats {
  std::mutex Mutex;
  PipelineStats Stats;

  void accumulate(const PipelineStats &Run) {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stats.Rounds += Run.Rounds;
    for (const PassStats &P : Run.Passes) {
      PassStats *Row = nullptr;
      for (PassStats &Existing : Stats.Passes)
        if (Existing.Name == P.Name) {
          Row = &Existing;
          break;
        }
      if (!Row) {
        Stats.Passes.push_back(PassStats());
        Stats.Passes.back().Name = P.Name;
        Row = &Stats.Passes.back();
      }
      Row->Invocations += P.Invocations;
      Row->ProgramsChanged += P.ProgramsChanged;
      Row->Seconds += P.Seconds;
    }
  }
};

CumulativeStats &cumulative() {
  static CumulativeStats C;
  return C;
}

} // namespace

void pbt::setVerifyIR(bool Enabled) {
  VerifyIRState.store(Enabled ? 1 : 0);
}

bool pbt::verifyIREnabled() {
  int State = VerifyIRState.load();
  if (State < 0) {
    const char *Value = envString("PBT_VERIFY_IR");
    State = (Value && *Value && std::strcmp(Value, "0") != 0) ? 1 : 0;
    VerifyIRState.store(State);
  }
  return State == 1;
}

PipelineStats pbt::cumulativePipelineStats() {
  CumulativeStats &C = cumulative();
  std::lock_guard<std::mutex> Lock(C.Mutex);
  return C.Stats;
}

//===----------------------------------------------------------------------===//
// The pipeline passes
//===----------------------------------------------------------------------===//

namespace {

/// Binds the program to the machine: the per-block cycle/instruction
/// tables every later stage (oracle typing, flat fusion) reads.
class CostModelPass final : public ProgramPass {
public:
  const char *name() const override { return "cost-model"; }
  bool doProgramPass(ProgramPrep &PC, const PipelineContext &Ctx) override {
    if (PC.Cost)
      return false;
    PC.Cost = std::make_shared<const CostModel>(*PC.Prog, *Ctx.Machine);
    return true;
  }
};

/// Phase-type assignment: the k-means proof of concept or the
/// behavioural oracle, per the technique. The baseline is untyped.
class TypingPass final : public ProgramPass {
public:
  const char *name() const override { return "typing"; }
  bool doProgramPass(ProgramPrep &PC, const PipelineContext &Ctx) override {
    if (Ctx.Tech->Baseline || PC.Typed || !PC.Cost)
      return false;
    if (Ctx.Tech->UseStaticTyping) {
      TypingConfig Config;
      Config.Seed = Ctx.TypingSeed;
      PC.Typing = computeStaticTyping(*PC.Prog, Config);
    } else {
      PC.Typing = computeOracleTyping(*PC.Prog, *PC.Cost);
    }
    PC.Typed = true;
    return true;
  }
};

/// Fig. 7 clustering-error injection over the fresh typing.
class ErrorInjectPass final : public ProgramPass {
public:
  const char *name() const override { return "error-inject"; }
  bool doProgramPass(ProgramPrep &PC, const PipelineContext &Ctx) override {
    if (Ctx.Tech->Baseline || Ctx.Tech->TypingError <= 0 ||
        PC.ErrorInjected || !PC.Typed)
      return false;
    PC.Typing = injectClusteringError(PC.Typing, Ctx.Tech->TypingError,
                                      Ctx.TypingSeed ^ 0xE77);
    PC.ErrorInjected = true;
    return true;
  }
};

/// Transition analysis: where the phase marks go. The baseline gets the
/// trivial one-type, zero-mark result.
class TransitionsPass final : public ProgramPass {
public:
  const char *name() const override { return "transitions"; }
  bool doProgramPass(ProgramPrep &PC, const PipelineContext &Ctx) override {
    if (PC.Marked)
      return false;
    if (Ctx.Tech->Baseline) {
      PC.Marking = MarkingResult();
      PC.Marking.NumTypes = 1;
      PC.Marking.RegionType.resize(PC.Prog->Procs.size());
    } else {
      // The error-inject pass must have had its chance at the typing
      // before marks are derived from it; within one round the pass
      // order guarantees that.
      if (!PC.Typed)
        return false;
      PC.Marking =
          computeTransitions(*PC.Prog, PC.Typing, Ctx.Tech->Transition);
    }
    PC.Marked = true;
    return true;
  }
};

/// Builds the instrumented program; the marks move into the image,
/// which owns them from here on.
class InstrumentPass final : public ProgramPass {
public:
  const char *name() const override { return "instrument"; }
  bool doProgramPass(ProgramPrep &PC, const PipelineContext &Ctx) override {
    if (PC.Image || !PC.Marked)
      return false;
    PC.Image = std::make_shared<const InstrumentedProgram>(
        *PC.Prog, std::move(PC.Marking), Ctx.Tech->Cost);
    return true;
  }
};

/// Fuses image + cost model into the flat execution image.
class FlattenPass final : public ProgramPass {
public:
  const char *name() const override { return "flatten"; }
  bool doProgramPass(ProgramPrep &PC, const PipelineContext &) override {
    if (PC.Flat || !PC.Image || !PC.Cost)
      return false;
    PC.Flat = std::make_shared<const FlatImage>(PC.Image, PC.Cost);
    return true;
  }
};

double nowSeconds() {
  // Wall time for the per-pass Seconds counters only; never feeds a
  // byte-compared artifact (see PassStats). Reads the vetted obs/Clock
  // seam, the one file allowed to touch std::chrono.
  return obs::monotonicSeconds();
}

} // namespace

PassManager pbt::buildPreparationPipeline() {
  PassManager PM;
  PM.add(std::make_unique<CostModelPass>());
  PM.add(std::make_unique<TypingPass>());
  PM.add(std::make_unique<ErrorInjectPass>());
  PM.add(std::make_unique<TransitionsPass>());
  PM.add(std::make_unique<InstrumentPass>());
  PM.add(std::make_unique<FlattenPass>());
  return PM;
}

PipelineContext pbt::makePipelineContext(const std::vector<Program> &Programs,
                                         const MachineConfig &Machine,
                                         const TechniqueSpec &Tech,
                                         uint64_t TypingSeed,
                                         ThreadPool *Pool) {
  PipelineContext Ctx;
  Ctx.Machine = &Machine;
  Ctx.Tech = &Tech;
  Ctx.TypingSeed = TypingSeed;
  Ctx.VerifyIR = verifyIREnabled();
  Ctx.Pool = Pool;
  Ctx.Programs.resize(Programs.size());
  for (size_t I = 0; I < Programs.size(); ++I)
    Ctx.Programs[I].Prog = &Programs[I];
  return Ctx;
}

PipelineStats PassManager::run(PipelineContext &Ctx) const {
  PipelineStats Stats;
  Stats.Passes.resize(Passes.size() + (Ctx.VerifyIR ? 1 : 0));
  for (size_t P = 0; P < Passes.size(); ++P)
    Stats.Passes[P].Name = Passes[P]->name();
  if (Ctx.VerifyIR)
    Stats.Passes.back().Name = "verify";

  ThreadPool &Pool = Ctx.Pool ? *Ctx.Pool : ThreadPool::global();
  const size_t N = Ctx.Programs.size();
  std::vector<uint8_t> Changed(N);

  // The self-verification sweep: every program's whole prepared state,
  // re-checked after the pass that just ran. Read-only per program, so
  // it fans out like any pass; failures surface on the caller thread as
  // one exception naming the pass boundary that broke the invariant.
  auto VerifySweep = [&](const char *AfterPass) {
    PassStats &V = Stats.Passes.back();
    double Start = nowSeconds();
    std::vector<std::string> Errors(N);
    Pool.parallelFor(N, [&](size_t I) {
      std::string Err;
      if (!verifyPrep(Ctx.Programs[I], Ctx, &Err))
        Errors[I] = Err.empty() ? "invariant violated" : Err;
    });
    V.Invocations += N;
    V.Seconds += nowSeconds() - Start;
    for (size_t I = 0; I < N; ++I)
      if (!Errors[I].empty())
        throw std::runtime_error(
            std::string("verify-ir: after pass '") + AfterPass +
            "', program '" + Ctx.Programs[I].Prog->Name +
            "': " + Errors[I]);
  };

  for (size_t P = 0; P < Passes.size(); ++P) {
    double Start = nowSeconds();
    Passes[P]->doInitialization(Ctx);
    Stats.Passes[P].Seconds += nowSeconds() - Start;
  }

  // The cross-program fixpoint: rounds of every pass over every
  // program until a full round reports no change.
  bool AnyChanged = true;
  while (AnyChanged) {
    AnyChanged = false;
    ++Stats.Rounds;
    for (size_t P = 0; P < Passes.size(); ++P) {
      PassStats &PS = Stats.Passes[P];
      double Start = nowSeconds();
      std::fill(Changed.begin(), Changed.end(), 0);
      Pool.parallelFor(N, [&](size_t I) {
        Changed[I] =
            Passes[P]->doProgramPass(Ctx.Programs[I], Ctx) ? 1 : 0;
      });
      uint64_t Count = 0;
      for (uint8_t C : Changed)
        Count += C;
      PS.Invocations += N;
      PS.ProgramsChanged += Count;
      PS.Seconds += nowSeconds() - Start;
      if (Count)
        AnyChanged = true;
      if (Ctx.VerifyIR)
        VerifySweep(Passes[P]->name());
    }
  }

  for (size_t P = 0; P < Passes.size(); ++P) {
    double Start = nowSeconds();
    Passes[P]->doFinalization(Ctx);
    Stats.Passes[P].Seconds += nowSeconds() - Start;
  }

  cumulative().accumulate(Stats);
  return Stats;
}

//===----------------------------------------------------------------------===//
// VerifyPass: static analysis of our own IR and derived images
//===----------------------------------------------------------------------===//

namespace {

bool failWith(std::string *Out, std::string Msg) {
  if (Out)
    *Out = std::move(Msg);
  return false;
}

std::string place(const char *What, uint32_t Proc, uint32_t Block) {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%s at proc %u block %u", What, Proc,
                Block);
  return Buf;
}

bool bitEqual(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

/// Recomputes dominators and natural loops per procedure and checks the
/// analyses' own invariants against each other and the CFG.
bool checkCfgAnalyses(const Program &Prog, std::string *Out) {
  for (const Procedure &P : Prog.Procs) {
    DominatorTree DT(P);
    if (DT.idom(0) != 0)
      return failWith(Out, place("entry idom is not the entry", P.Id, 0));
    for (uint32_t B = 1; B < P.Blocks.size(); ++B) {
      int32_t Id = DT.idom(B);
      if (Id < 0)
        continue; // Unreachable block: dominates nothing, fine.
      if (static_cast<uint32_t>(Id) == B)
        return failWith(Out, place("non-entry block is its own idom",
                                   P.Id, B));
      if (!DT.dominates(static_cast<uint32_t>(Id), B))
        return failWith(Out,
                        place("idom does not dominate its block", P.Id, B));
    }

    LoopInfo LI = computeLoops(P);
    if (LI.InnermostLoop.size() != P.Blocks.size())
      return failWith(Out, place("innermost-loop map has wrong size", P.Id,
                                 0));
    for (size_t L = 0; L < LI.Loops.size(); ++L) {
      const Loop &Lp = LI.Loops[L];
      if (Lp.Header >= P.Blocks.size() || !Lp.contains(Lp.Header))
        return failWith(Out,
                        place("loop header outside loop", P.Id, Lp.Header));
      for (size_t I = 0; I < Lp.Blocks.size(); ++I) {
        uint32_t B = Lp.Blocks[I];
        if (B >= P.Blocks.size())
          return failWith(Out, place("loop member out of range", P.Id, B));
        if (I > 0 && Lp.Blocks[I - 1] >= B)
          return failWith(Out,
                          place("loop members not sorted", P.Id, B));
        if (!DT.dominates(Lp.Header, B))
          return failWith(
              Out, place("loop header does not dominate member", P.Id, B));
      }
      if (Lp.Parent >= 0) {
        if (static_cast<size_t>(Lp.Parent) >= LI.Loops.size())
          return failWith(Out,
                          place("loop parent out of range", P.Id, Lp.Header));
        const Loop &Par = LI.Loops[static_cast<size_t>(Lp.Parent)];
        if (Par.Depth + 1 != Lp.Depth)
          return failWith(
              Out, place("loop depth != parent depth + 1", P.Id, Lp.Header));
        if (std::find(Par.Children.begin(), Par.Children.end(),
                      static_cast<uint32_t>(L)) == Par.Children.end())
          return failWith(
              Out, place("loop missing from parent's children", P.Id,
                         Lp.Header));
        for (uint32_t B : Lp.Blocks)
          if (!Par.contains(B))
            return failWith(
                Out, place("nested loop member escapes parent", P.Id, B));
      } else if (Lp.Depth != 1) {
        return failWith(Out,
                        place("outermost loop depth != 1", P.Id, Lp.Header));
      }
    }
    for (uint32_t B = 0; B < P.Blocks.size(); ++B) {
      int32_t L = LI.InnermostLoop[B];
      if (L < 0)
        continue;
      if (static_cast<size_t>(L) >= LI.Loops.size() ||
          !LI.Loops[static_cast<size_t>(L)].contains(B))
        return failWith(
            Out, place("innermost-loop map disagrees with loop", P.Id, B));
    }
  }
  return true;
}

/// Mark-placement legality against the program: anchors in range, edge
/// marks on real edges, call marks on call-terminated blocks, no
/// duplicate anchors, phase types within the typing universe.
bool checkMarks(const Program &Prog, const std::vector<PhaseMark> &Marks,
                uint32_t NumTypes, std::string *Out) {
  std::set<std::tuple<uint32_t, uint32_t, uint8_t, uint32_t>> Anchors;
  for (const PhaseMark &M : Marks) {
    if (M.Proc >= Prog.Procs.size())
      return failWith(Out, place("mark proc out of range", M.Proc, M.Block));
    const Procedure &P = Prog.Procs[M.Proc];
    if (M.Block >= P.Blocks.size())
      return failWith(Out, place("mark block out of range", M.Proc, M.Block));
    const BasicBlock &BB = P.Blocks[M.Block];
    if (M.Point == MarkPoint::Edge) {
      if (M.SuccIndex >= 2 || M.SuccIndex >= BB.Succs.size())
        return failWith(
            Out, place("edge mark on nonexistent edge", M.Proc, M.Block));
    } else if (M.Point == MarkPoint::CallSite) {
      if (BB.calleeOrNone() < 0)
        return failWith(
            Out, place("call mark on call-free block", M.Proc, M.Block));
    } else {
      return failWith(Out, place("invalid mark point", M.Proc, M.Block));
    }
    if (M.PhaseType >= std::max(1u, NumTypes))
      return failWith(Out,
                      place("mark phase type out of range", M.Proc, M.Block));
    uint32_t Slot = M.Point == MarkPoint::CallSite ? 0 : M.SuccIndex;
    if (!Anchors
             .emplace(M.Proc, M.Block, static_cast<uint8_t>(M.Point), Slot)
             .second)
      return failWith(Out, place("duplicate mark anchor", M.Proc, M.Block));
  }
  return true;
}

/// Typing shape: one type per block, all within [0, NumTypes).
bool checkTyping(const Program &Prog, const ProgramTyping &Typing,
                 std::string *Out) {
  if (Typing.NumTypes == 0)
    return failWith(Out, "typing has zero types");
  if (Typing.TypeOf.size() != Prog.Procs.size())
    return failWith(Out, "typing proc count mismatch");
  for (uint32_t P = 0; P < Prog.Procs.size(); ++P) {
    if (Typing.TypeOf[P].size() != Prog.Procs[P].Blocks.size())
      return failWith(Out, place("typing row size mismatch", P, 0));
    for (uint32_t B = 0; B < Typing.TypeOf[P].size(); ++B)
      if (Typing.TypeOf[P][B] >= Typing.NumTypes)
        return failWith(Out, place("block type out of range", P, B));
  }
  return true;
}

/// The flat image re-derived from its own program and cost model: every
/// record, mark index, cost-table row, and chain summary must equal
/// what the constructor computes, with chain cycle sums re-walked in
/// the exact engines' left-to-right order.
bool checkFlat(const FlatImage &F, std::string *Out) {
  const InstrumentedProgram &IP = F.program();
  const Program &Prog = IP.program();
  const CostModel &CM = F.cost();
  const std::vector<PhaseMark> &Marks = IP.marks();
  const uint32_t Stride = F.configStride();
  const uint32_t MaxSharers = F.maxSharers();

  if (F.numCoreTypes() != CM.machine().numCoreTypes() ||
      MaxSharers != CM.maxSharers() ||
      Stride != F.numCoreTypes() * MaxSharers || Stride == 0)
    return failWith(Out, "flat image machine shape mismatch");

  // Global-block-id contiguity: procedure offsets partition [0, total).
  if (F.numProcs() != Prog.Procs.size())
    return failWith(Out, "flat image proc count mismatch");
  uint32_t Expected = 0;
  for (uint32_t P = 0; P < F.numProcs(); ++P) {
    if (F.offsetOf(P) != Expected)
      return failWith(Out, place("global block ids not contiguous", P, 0));
    Expected += static_cast<uint32_t>(Prog.Procs[P].Blocks.size());
  }
  if (F.numBlocks() != Expected)
    return failWith(Out, "flat image block count mismatch");

  auto MarkIndex = [&](const PhaseMark *M) -> int32_t {
    return M ? static_cast<int32_t>(M - Marks.data()) : -1;
  };

  uint32_t ChainSeen = 0;
  for (uint32_t P = 0; P < F.numProcs(); ++P) {
    const Procedure &Proc = Prog.Procs[P];
    for (uint32_t B = 0; B < Proc.Blocks.size(); ++B) {
      const uint32_t G = F.globalId(P, B);
      const FlatBlock &FB = F.block(G);
      const BasicBlock &BB = Proc.Blocks[B];

      if (FB.Insts != BB.size() || FB.Insts != CM.blockInsts(P, B))
        return failWith(Out,
                        place("flat instruction count mismatch", P, B));

      // Cost-model binding: the inlined cycle rows must be bit-equal to
      // the cost model's answers for every (core type, sharers) config.
      if (FB.CycleRow != G * Stride)
        return failWith(Out, place("cycle row out of layout", P, B));
      for (uint32_t Ct = 0; Ct < F.numCoreTypes(); ++Ct)
        for (uint32_t Sharers = 1; Sharers <= MaxSharers; ++Sharers)
          if (!bitEqual(
                  F.cycleTable()[FB.CycleRow + Ct * MaxSharers +
                                 (Sharers - 1)],
                  CM.blockCycles(P, B, Ct, Sharers)))
            return failWith(
                Out, place("cycle table differs from cost model", P, B));

      int32_t E0 = MarkIndex(IP.edgeMark(P, B, 0));
      int32_t E1 = MarkIndex(IP.edgeMark(P, B, 1));
      int32_t CMk = MarkIndex(IP.callMark(P, B));
      if (BB.Term == TermKind::Cond && BB.Succs.size() < 2)
        E1 = E0; // The builder's single-successor Cond fold.
      if (FB.EdgeMark[0] != E0 || FB.EdgeMark[1] != E1 ||
          FB.CallMark != CMk)
        return failWith(Out,
                        place("flat mark lookup mismatch", P, B));

      switch (BB.Term) {
      case TermKind::Jump: {
        if (FB.Succ[0] != F.globalId(P, BB.Succs[0]))
          return failWith(Out, place("jump successor mismatch", P, B));
        int32_t Callee = BB.calleeOrNone();
        if (Callee >= 0) {
          if (FB.Op != FlatOp::Call ||
              FB.Callee != F.offsetOf(static_cast<uint32_t>(Callee)))
            return failWith(Out, place("call record mismatch", P, B));
        } else if (FB.Op !=
                   (FB.EdgeMark[0] >= 0 ? FlatOp::Jump : FlatOp::Chain)) {
          // Chains must cover exactly the mark-free, call-free jumps.
          return failWith(Out, place("jump/chain op mismatch", P, B));
        }
        break;
      }
      case TermKind::Loop:
        if (FB.Op != FlatOp::Loop ||
            FB.Succ[0] != F.globalId(P, BB.Succs[0]) ||
            FB.Succ[1] != F.globalId(P, BB.Succs[1]) ||
            FB.TripCount != BB.TripCount)
          return failWith(Out, place("loop record mismatch", P, B));
        break;
      case TermKind::Cond:
        if (FB.Op != FlatOp::Cond ||
            FB.Succ[0] != F.globalId(P, BB.Succs[0]) ||
            FB.Succ[1] !=
                F.globalId(P, BB.Succs[BB.Succs.size() > 1 ? 1 : 0]) ||
            !bitEqual(FB.TakenProb, BB.TakenProb))
          return failWith(Out, place("cond record mismatch", P, B));
        break;
      case TermKind::Ret:
        if (FB.Op != FlatOp::Ret)
          return failWith(Out, place("ret record mismatch", P, B));
        break;
      }

      if (FB.Op != FlatOp::Chain)
        continue;

      // Chain well-formedness. Rows are assigned sequentially in block
      // order; summaries obey the suffix recurrence; and the fused
      // cycle sums must equal a fresh left-to-right walk bit for bit.
      if (FB.ChainRow != ChainSeen * Stride)
        return failWith(Out, place("chain row out of order", P, B));
      ++ChainSeen;
      const FlatBlock &S = F.block(FB.Succ[0]);
      if (FB.ChainBlocks == 0) {
        // No summary: only legal when the record feeds a mark-free jump
        // cycle, i.e. its successor is another summary-less chain.
        if (S.Op != FlatOp::Chain || S.ChainBlocks != 0)
          return failWith(
              Out, place("summary-less chain does not feed a cycle", P, B));
        continue;
      }
      if (S.Op == FlatOp::Chain) {
        if (S.ChainBlocks == 0 || S.ChainBlocks + 1 != FB.ChainBlocks ||
            FB.ChainInsts != FB.Insts + S.ChainInsts ||
            FB.ChainExit != S.ChainExit)
          return failWith(Out, place("chain suffix mismatch", P, B));
      } else if (FB.ChainBlocks != 1 || FB.ChainInsts != FB.Insts ||
                 FB.ChainExit != FB.Succ[0]) {
        return failWith(Out, place("chain tail mismatch", P, B));
      }
      if (F.block(FB.ChainExit).Op == FlatOp::Chain)
        return failWith(Out, place("chain exit is a chain record", P, B));
      for (uint32_t Cfg = 0; Cfg < Stride; ++Cfg) {
        double Sum = 0.0;
        uint32_t Cur = G;
        for (uint32_t Step = 0; Step < FB.ChainBlocks; ++Step) {
          const FlatBlock &W = F.block(Cur);
          if (W.Op != FlatOp::Chain)
            return failWith(Out,
                            place("chain walk leaves chain early", P, B));
          Sum += F.cycleTable()[W.CycleRow + Cfg];
          Cur = W.Succ[0];
        }
        if (Cur != FB.ChainExit)
          return failWith(Out, place("chain walk exit mismatch", P, B));
        if (!bitEqual(Sum, F.chainCycleTable()[FB.ChainRow + Cfg]))
          return failWith(
              Out,
              place("chain cycle sum differs from exact walk", P, B));
      }
    }
  }
  if (ChainSeen != F.chainRecordCount())
    return failWith(Out, "chain record count mismatch");
  return true;
}

} // namespace

bool pbt::verifyPrep(const ProgramPrep &PC, const PipelineContext &Ctx,
                     std::string *ErrorOut) {
  const Program *Prog = PC.Prog;
  if (!Prog && PC.Image)
    Prog = &PC.Image->program();
  if (!Prog)
    return failWith(ErrorOut, "no program to verify");

  std::string Err;
  if (!verify(*Prog, &Err))
    return failWith(ErrorOut, "program invariant: " + Err);
  if (!checkCfgAnalyses(*Prog, ErrorOut))
    return false;

  if (PC.Cost) {
    // Cost-model binding against the IR: entry layout and instruction
    // counts (cycle tables are cross-checked via the flat image below).
    for (uint32_t P = 0; P < Prog->Procs.size(); ++P)
      for (uint32_t B = 0; B < Prog->Procs[P].Blocks.size(); ++B)
        if (PC.Cost->blockInsts(P, B) != Prog->Procs[P].Blocks[B].size())
          return failWith(ErrorOut,
                          place("cost model disagrees with program", P, B));
  }

  if (PC.Typed && !checkTyping(*Prog, PC.Typing, ErrorOut))
    return false;

  if (PC.Marked && !PC.Image) {
    // Pre-instrumentation marking (the instrument pass moves it into
    // the image, after which the image's copy is the one checked).
    if (PC.Marking.NumTypes == 0)
      return failWith(ErrorOut, "marking has zero types");
    if (PC.Marking.RegionType.size() != Prog->Procs.size())
      return failWith(ErrorOut, "marking region-type proc count mismatch");
    for (uint32_t P = 0; P < Prog->Procs.size(); ++P) {
      const std::vector<uint32_t> &Row = PC.Marking.RegionType[P];
      if (!Row.empty() && Row.size() != Prog->Procs[P].Blocks.size())
        return failWith(ErrorOut,
                        place("region-type row size mismatch", P, 0));
      for (uint32_t Type : Row)
        if (Type >= std::max(1u, PC.Marking.NumTypes))
          return failWith(ErrorOut,
                          place("region type out of range", P, 0));
    }
    if (!checkMarks(*Prog, PC.Marking.Marks, PC.Marking.NumTypes, ErrorOut))
      return false;
  }

  if (PC.Image) {
    const InstrumentedProgram &IP = *PC.Image;
    // The image carries its own program copy; it must still satisfy the
    // IR invariants and describe the same program.
    if (&IP.program() != Prog) {
      if (!verify(IP.program(), &Err))
        return failWith(ErrorOut, "image program invariant: " + Err);
      if (IP.program().Name != Prog->Name ||
          IP.program().Procs.size() != Prog->Procs.size() ||
          IP.program().blockCount() != Prog->blockCount())
        return failWith(ErrorOut, "image program diverged from source");
    }
    if (IP.numTypes() == 0)
      return failWith(ErrorOut, "image has zero phase types");
    if (!checkMarks(IP.program(), IP.marks(), IP.numTypes(), ErrorOut))
      return false;
    if (Ctx.Tech && IP.cost() != Ctx.Tech->Cost)
      return failWith(ErrorOut,
                      "image mark-cost model differs from technique");
  }

  if (PC.Flat) {
    if (PC.Image && &PC.Flat->program() != PC.Image.get())
      return failWith(ErrorOut, "flat image bound to a different image");
    if (PC.Cost && &PC.Flat->cost() != PC.Cost.get())
      return failWith(ErrorOut, "flat image bound to a different cost model");
    if (!checkFlat(*PC.Flat, ErrorOut))
      return false;
  }

  return true;
}

bool pbt::verifyPrepared(const PreparedSuite &Suite,
                         const MachineConfig &Machine,
                         std::string *ErrorOut) {
  if (Suite.Images.size() != Suite.Costs.size() ||
      Suite.Images.size() != Suite.Flats.size() ||
      Suite.Images.size() != Suite.Names.size())
    return failWith(ErrorOut, "suite arrays have mismatched sizes");
  PipelineContext Ctx;
  Ctx.Machine = &Machine;
  for (size_t I = 0; I < Suite.Images.size(); ++I) {
    ProgramPrep PC;
    PC.Prog = &Suite.Images[I]->program();
    PC.Cost = Suite.Costs[I];
    PC.Image = Suite.Images[I];
    PC.Flat = Suite.Flats[I];
    std::string Err;
    if (!verifyPrep(PC, Ctx, &Err))
      return failWith(ErrorOut, "suite[" + std::to_string(I) + "] '" +
                                    Suite.Names[I] + "': " + Err);
  }
  return true;
}

//===- analysis/Dominators.cpp - Iterative dominator tree ----------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include "analysis/CfgAlgorithms.h"

#include <cassert>

using namespace pbt;

DominatorTree::DominatorTree(const Procedure &P) {
  size_t N = P.Blocks.size();
  Idom.assign(N, -1);

  std::vector<uint32_t> Rpo = reversePostorder(P);
  std::vector<int32_t> RpoNumber(N, -1);
  for (size_t I = 0; I < Rpo.size(); ++I)
    RpoNumber[Rpo[I]] = static_cast<int32_t>(I);

  auto Preds = predecessors(P);
  Idom[0] = 0;

  // Cooper-Harvey-Kennedy: intersect along the idom chains, walking in
  // reverse postorder until a fixpoint.
  auto Intersect = [&](int32_t A, int32_t B) {
    while (A != B) {
      while (RpoNumber[A] > RpoNumber[B])
        A = Idom[A];
      while (RpoNumber[B] > RpoNumber[A])
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t Block : Rpo) {
      if (Block == 0)
        continue;
      int32_t NewIdom = -1;
      for (uint32_t Pred : Preds[Block]) {
        if (RpoNumber[Pred] < 0 || Idom[Pred] < 0)
          continue; // Unprocessed or unreachable predecessor.
        NewIdom = NewIdom < 0 ? static_cast<int32_t>(Pred)
                              : Intersect(NewIdom, static_cast<int32_t>(Pred));
      }
      if (NewIdom >= 0 && Idom[Block] != NewIdom) {
        Idom[Block] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(uint32_t A, uint32_t B) const {
  assert(A < Idom.size() && B < Idom.size() && "block out of range");
  if (Idom[A] < 0 || Idom[B] < 0)
    return false;
  uint32_t Cursor = B;
  while (true) {
    if (Cursor == A)
      return true;
    uint32_t Up = static_cast<uint32_t>(Idom[Cursor]);
    if (Up == Cursor)
      return false; // Reached the entry.
    Cursor = Up;
  }
}

//===- analysis/CallGraph.h - Call graph and bottom-up order ---*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call graph with Tarjan SCCs. The paper's loop-level analysis is
/// inter-procedural and performs "a bottom-up typing with respect to the
/// call graph", re-analyzing recursive cliques until a fixpoint
/// (Sec. II-A1c); BottomUpOrder provides the traversal order and SccId
/// identifies the recursive cliques.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ANALYSIS_CALLGRAPH_H
#define PBT_ANALYSIS_CALLGRAPH_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace pbt {

/// Call graph of a program (procedure-level).
struct CallGraph {
  /// Deduplicated callee lists per procedure.
  std::vector<std::vector<uint32_t>> Callees;
  /// Deduplicated caller lists per procedure.
  std::vector<std::vector<uint32_t>> Callers;
  /// Procedures ordered callees-first (bottom-up over the SCC DAG).
  std::vector<uint32_t> BottomUpOrder;
  /// SCC id per procedure; ids are dense and assigned bottom-up.
  std::vector<uint32_t> SccId;

  /// Returns true when \p Proc participates in (possibly indirect)
  /// recursion, i.e. is in a non-trivial SCC or calls itself.
  bool isRecursive(uint32_t Proc) const;
};

/// Builds the call graph of \p Prog.
CallGraph buildCallGraph(const Program &Prog);

} // namespace pbt

#endif // PBT_ANALYSIS_CALLGRAPH_H

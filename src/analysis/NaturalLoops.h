//===- analysis/NaturalLoops.h - Natural loops and nesting -----*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection (back edges whose target dominates the source,
/// per Muchnick, the algorithm the paper cites for partitioning the CFG
/// into loops) plus the loop-nesting forest consumed by the paper's
/// Algorithm 1 (loop summarization with nesting-level weights).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ANALYSIS_NATURALLOOPS_H
#define PBT_ANALYSIS_NATURALLOOPS_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace pbt {

/// One natural loop. Loops sharing a header are merged (classic natural
/// loop construction).
struct Loop {
  uint32_t Header = 0;
  /// Member blocks, sorted ascending; always contains Header.
  std::vector<uint32_t> Blocks;
  /// Index of the innermost strictly-containing loop, or -1.
  int32_t Parent = -1;
  /// Indices of loops immediately nested inside this one.
  std::vector<uint32_t> Children;
  /// Nesting depth; outermost loops have depth 1.
  uint32_t Depth = 1;

  bool contains(uint32_t Block) const;
};

/// All natural loops of a procedure, with the nesting forest.
struct LoopInfo {
  std::vector<Loop> Loops;
  /// Per block: index of the innermost loop containing it, or -1.
  std::vector<int32_t> InnermostLoop;

  /// Nesting depth of \p Block (0 when not inside any loop).
  uint32_t depthOf(uint32_t Block) const {
    int32_t L = InnermostLoop[Block];
    return L < 0 ? 0 : Loops[static_cast<uint32_t>(L)].Depth;
  }

  /// Returns true when loop \p Inner is strictly nested inside \p Outer.
  bool strictlyNested(uint32_t Inner, uint32_t Outer) const;
};

/// Computes natural loops of \p P from its dominator tree and back edges.
LoopInfo computeLoops(const Procedure &P);

} // namespace pbt

#endif // PBT_ANALYSIS_NATURALLOOPS_H

//===- analysis/CfgAlgorithms.h - DFS, edges, preds -------------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Basic control-flow graph utilities shared by the interval and loop
/// analyses: depth-first orders, backward/forward edge classification (the
/// b/f edge attribute of the paper's attributed CFGs), and predecessor
/// lists.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ANALYSIS_CFGALGORITHMS_H
#define PBT_ANALYSIS_CFGALGORITHMS_H

#include "ir/Program.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace pbt {

/// A directed CFG edge (source block, successor index). Identifying edges
/// by successor *index* rather than target keeps parallel edges distinct
/// and is how phase marks address their insertion points.
struct CfgEdge {
  uint32_t Src = 0;
  uint32_t SuccIndex = 0;

  bool operator==(const CfgEdge &Other) const {
    return Src == Other.Src && SuccIndex == Other.SuccIndex;
  }
  bool operator<(const CfgEdge &Other) const {
    return std::pair(Src, SuccIndex) < std::pair(Other.Src, Other.SuccIndex);
  }
};

/// Result of a depth-first traversal from the procedure entry.
struct CfgDfsResult {
  /// Blocks in depth-first preorder (reachable blocks only).
  std::vector<uint32_t> Preorder;
  /// Blocks in depth-first postorder (reachable blocks only).
  std::vector<uint32_t> Postorder;
  /// Per-block flag: reachable from the entry.
  std::vector<bool> Reachable;
  /// Edges (u, succIndex) whose target is a DFS ancestor of u: the
  /// backward edges `b` of the paper's attributed CFG. For the reducible
  /// graphs produced by IRBuilder these coincide with loop back edges.
  std::vector<CfgEdge> BackEdges;

  /// Returns true if the edge is classified backward.
  bool isBackEdge(uint32_t Src, uint32_t SuccIndex) const;
};

/// Runs an iterative DFS over \p P starting at its entry block.
CfgDfsResult runDfs(const Procedure &P);

/// Predecessor lists: Preds[b] contains each block with an edge into b
/// (repeated once per parallel edge).
std::vector<std::vector<uint32_t>> predecessors(const Procedure &P);

/// Blocks in reverse postorder (reachable blocks only).
std::vector<uint32_t> reversePostorder(const Procedure &P);

} // namespace pbt

#endif // PBT_ANALYSIS_CFGALGORITHMS_H

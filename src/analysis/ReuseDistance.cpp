//===- analysis/ReuseDistance.cpp - Stack-distance cache estimate --------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ReuseDistance.h"

#include <algorithm>
#include <cassert>

using namespace pbt;

double ReuseProfile::missRate(uint32_t CacheLines) const {
  if (AccessCount == 0)
    return 0.0;
  // Accesses with stack distance >= CacheLines do not fit in the cache.
  auto FirstFit = std::lower_bound(Distances.begin(), Distances.end(),
                                   CacheLines);
  size_t Missing = Distances.end() - FirstFit;
  return static_cast<double>(Missing + ColdCount) /
         static_cast<double>(AccessCount);
}

double ReuseProfile::meanDistance() const {
  if (Distances.empty())
    return 0.0;
  double Sum = 0;
  for (uint32_t D : Distances)
    Sum += D;
  return Sum / static_cast<double>(Distances.size());
}

ReuseProfile pbt::computeBlockReuse(const BasicBlock &BB) {
  ReuseProfile Profile;

  std::vector<int32_t> Stream;
  Stream.reserve(BB.memOpCount());
  for (const Instruction &I : BB.Insts)
    if (isMemoryKind(I.Kind))
      Stream.push_back(I.MemRef);
  if (Stream.empty())
    return Profile;

  // Occurrence counts within one execution: references touched once per
  // execution participate in the block's streaming walk (distance =
  // StreamWorkingSet) when a stream is declared; repeated references are
  // block-resident and get their measured LRU distance.
  std::vector<uint32_t> Occurrences;
  for (int32_t Ref : Stream) {
    if (static_cast<size_t>(Ref) >= Occurrences.size())
      Occurrences.resize(static_cast<size_t>(Ref) + 1, 0);
    ++Occurrences[static_cast<size_t>(Ref)];
  }
  auto IsStreaming = [&](int32_t Ref) {
    return BB.StreamWorkingSet > 0 &&
           Occurrences[static_cast<size_t>(Ref)] == 1;
  };

  // LRU stack simulation over the stream replayed twice; record only the
  // second pass (steady state).
  std::vector<int32_t> LruStack; // Front = most recently used.
  auto Touch = [&](int32_t Ref, bool Record) {
    if (Record && IsStreaming(Ref)) {
      Profile.Distances.push_back(BB.StreamWorkingSet);
      ++Profile.AccessCount;
      return;
    }
    auto It = std::find(LruStack.begin(), LruStack.end(), Ref);
    if (It == LruStack.end()) {
      if (Record) {
        ++Profile.ColdCount;
        ++Profile.AccessCount;
      }
      LruStack.insert(LruStack.begin(), Ref);
      return;
    }
    uint32_t Distance = static_cast<uint32_t>(It - LruStack.begin());
    LruStack.erase(It);
    LruStack.insert(LruStack.begin(), Ref);
    if (Record) {
      Profile.Distances.push_back(Distance);
      ++Profile.AccessCount;
    }
  };

  for (int32_t Ref : Stream)
    Touch(Ref, /*Record=*/false);
  for (int32_t Ref : Stream)
    Touch(Ref, /*Record=*/true);

  std::sort(Profile.Distances.begin(), Profile.Distances.end());
  assert(Profile.AccessCount ==
             Profile.Distances.size() + Profile.ColdCount &&
         "profile accounting mismatch");
  return Profile;
}

//===- analysis/BlockTyping.h - Static phase types Π ------------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assigns every basic block of a program a *phase type* pi in Π
/// (Sec. II-A3): extract 2-D features, run k-means, and canonicalize the
/// cluster labels so that type ids ascend with memory-boundedness
/// (type 0 = most compute-bound). The paper notes "other methods for
/// classifying basic blocks can also be used"; ProgramTyping is therefore
/// a plain data object that other classifiers (e.g. the simulator's
/// behavioural oracle, or error-injected typings) can also produce.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ANALYSIS_BLOCKTYPING_H
#define PBT_ANALYSIS_BLOCKTYPING_H

#include "analysis/Features.h"
#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace pbt {

/// Configuration of the static typing pass.
struct TypingConfig {
  /// Number of phase types (clusters). Two core types need two clusters
  /// (paper Sec. IV-C3); more are supported.
  uint32_t NumTypes = 2;
  /// Reference cache size for the static miss estimate, in 64-byte lines.
  /// Default 2 MiB, half of the 4 MiB shared L2 of the paper's machine.
  uint32_t ReferenceCacheLines = 32768;
  /// Seed for k-means.
  uint64_t Seed = 42;
};

/// A phase-type assignment for every block of a program.
struct ProgramTyping {
  /// TypeOf[procId][blockId] = phase type in [0, NumTypes).
  std::vector<std::vector<uint32_t>> TypeOf;
  uint32_t NumTypes = 0;

  uint32_t typeOf(uint32_t Proc, uint32_t Block) const {
    return TypeOf[Proc][Block];
  }

  /// Fraction of blocks whose type differs from \p Other (weighted per
  /// block). Used to quantify static-typing error against an oracle.
  double disagreement(const ProgramTyping &Other) const;
};

/// Runs the paper's proof-of-concept static typing over \p Prog.
ProgramTyping computeStaticTyping(const Program &Prog,
                                  const TypingConfig &Config);

} // namespace pbt

#endif // PBT_ANALYSIS_BLOCKTYPING_H

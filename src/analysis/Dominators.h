//===- analysis/Dominators.h - Iterative dominator tree --------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immediate-dominator computation (Cooper–Harvey–Kennedy iterative
/// algorithm). Feeds the natural-loop analysis used by the paper's
/// inter-procedural loop summarization (Sec. II-A1c).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ANALYSIS_DOMINATORS_H
#define PBT_ANALYSIS_DOMINATORS_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace pbt {

/// Dominator tree for one procedure.
class DominatorTree {
public:
  /// Builds the tree for \p P. Unreachable blocks get Idom == -1.
  explicit DominatorTree(const Procedure &P);

  /// Immediate dominator of \p Block; the entry's idom is itself;
  /// -1 for unreachable blocks.
  int32_t idom(uint32_t Block) const { return Idom[Block]; }

  /// Returns true when \p A dominates \p B (reflexive). Unreachable
  /// blocks dominate nothing and are dominated by nothing.
  bool dominates(uint32_t A, uint32_t B) const;

private:
  std::vector<int32_t> Idom;
};

} // namespace pbt

#endif // PBT_ANALYSIS_DOMINATORS_H

//===- analysis/ReuseDistance.h - Stack-distance cache estimate -*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reuse-distance (LRU stack distance) analysis of a block's memory
/// reference stream. The paper's static block typing uses "a rough
/// estimate of cache behavior (computation based on reuse distances)"
/// citing Beyls & D'Hollander 2001; the same profile also drives the
/// simulator's analytic miss-rate model, so the static estimate and the
/// simulated truth share a principled foundation while remaining distinct
/// (the simulator additionally models shared-cache contention).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ANALYSIS_REUSEDISTANCE_H
#define PBT_ANALYSIS_REUSEDISTANCE_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace pbt {

/// Steady-state reuse profile of one basic block.
///
/// The profile is measured over the block's reference stream replayed
/// twice and recorded on the second pass, which captures loop-carried
/// reuse (blocks execute repeatedly inside loops) and discards one-time
/// cold misses.
struct ReuseProfile {
  /// Sorted stack distances (in distinct 64-byte lines) of the recorded
  /// accesses that have a finite reuse distance.
  std::vector<uint32_t> Distances;
  /// Recorded accesses with no prior access to the same line (infinite
  /// distance); these always miss.
  uint32_t ColdCount = 0;
  /// Total recorded accesses (|Distances| + ColdCount).
  uint32_t AccessCount = 0;

  /// Fraction of accesses that miss in a fully-associative LRU cache of
  /// \p CacheLines lines: those with distance >= CacheLines, plus cold
  /// accesses. Returns 0 when the block performs no memory accesses.
  double missRate(uint32_t CacheLines) const;

  /// Mean finite stack distance (0 when there is no reuse).
  double meanDistance() const;
};

/// Computes the steady-state reuse profile of \p BB.
ReuseProfile computeBlockReuse(const BasicBlock &BB);

} // namespace pbt

#endif // PBT_ANALYSIS_REUSEDISTANCE_H

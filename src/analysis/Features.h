//===- analysis/Features.h - Static block features --------------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-dimensional feature space of the paper's proof-of-concept block
/// typing (Sec. II-A3): one axis combines instruction types, the other is
/// the rough reuse-distance-based cache estimate. Blocks are later grouped
/// in this space with k-means.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ANALYSIS_FEATURES_H
#define PBT_ANALYSIS_FEATURES_H

#include "ir/Program.h"

#include <array>
#include <cstdint>

namespace pbt {

/// Static features of one basic block.
struct BlockFeatures {
  /// Fraction of memory operations among the block's instructions.
  double MemFrac = 0;
  /// Fraction of floating-point operations.
  double FpFrac = 0;
  /// Estimated miss rate at the reference cache size.
  double MissRate = 0;
  /// log2(1 + mean stack distance), a compact locality scale.
  double LogReuse = 0;

  /// Projects the features onto the paper's 2-D typing space:
  /// [instruction-type axis, cache-behaviour axis]. The first axis is
  /// memory intensity (loads/stores dominate the distinction between
  /// frequency-loving and stall-tolerant code); the second is the
  /// estimated miss rate scaled by memory intensity, i.e. expected misses
  /// per instruction.
  std::array<double, 2> typingPoint() const {
    return {MemFrac, MemFrac * MissRate};
  }
};

/// Extracts features of \p BB using a fully-associative reference cache of
/// \p ReferenceCacheLines 64-byte lines.
BlockFeatures computeFeatures(const BasicBlock &BB,
                              uint32_t ReferenceCacheLines);

} // namespace pbt

#endif // PBT_ANALYSIS_FEATURES_H

//===- analysis/Features.cpp - Static block features ----------------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Features.h"

#include "analysis/ReuseDistance.h"

#include <cmath>

using namespace pbt;

BlockFeatures pbt::computeFeatures(const BasicBlock &BB,
                                   uint32_t ReferenceCacheLines) {
  BlockFeatures F;
  if (BB.Insts.empty())
    return F;

  size_t Mem = 0;
  size_t Fp = 0;
  for (const Instruction &I : BB.Insts) {
    if (isMemoryKind(I.Kind))
      ++Mem;
    else if (I.Kind == InstKind::FpAlu)
      ++Fp;
  }
  double Total = static_cast<double>(BB.Insts.size());
  F.MemFrac = static_cast<double>(Mem) / Total;
  F.FpFrac = static_cast<double>(Fp) / Total;

  ReuseProfile Profile = computeBlockReuse(BB);
  F.MissRate = Profile.missRate(ReferenceCacheLines);
  F.LogReuse = std::log2(1.0 + Profile.meanDistance());
  return F;
}

//===- analysis/CallGraph.cpp - Call graph and bottom-up order -----------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include <algorithm>
#include <cassert>

using namespace pbt;

bool CallGraph::isRecursive(uint32_t Proc) const {
  assert(Proc < Callees.size() && "procedure out of range");
  for (uint32_t Callee : Callees[Proc])
    if (Callee == Proc || SccId[Callee] == SccId[Proc])
      return true;
  return false;
}

namespace {

/// Iterative Tarjan SCC over the call graph.
class TarjanScc {
public:
  explicit TarjanScc(const std::vector<std::vector<uint32_t>> &Adj)
      : Adj(Adj), Index(Adj.size(), -1), LowLink(Adj.size(), 0),
        OnStack(Adj.size(), false), SccOf(Adj.size(), 0) {}

  void run() {
    for (uint32_t V = 0; V < Adj.size(); ++V)
      if (Index[V] < 0)
        strongConnect(V);
  }

  std::vector<uint32_t> SccOfNode() const { return SccOf; }
  uint32_t sccCount() const { return NextScc; }

private:
  void strongConnect(uint32_t Root) {
    // Explicit stack frames: (node, next child index).
    std::vector<std::pair<uint32_t, size_t>> Frames{{Root, 0}};
    push(Root);
    while (!Frames.empty()) {
      auto &[V, Child] = Frames.back();
      if (Child < Adj[V].size()) {
        uint32_t W = Adj[V][Child++];
        if (Index[W] < 0) {
          push(W);
          Frames.emplace_back(W, 0);
        } else if (OnStack[W]) {
          LowLink[V] = std::min(LowLink[V], static_cast<uint32_t>(Index[W]));
        }
        continue;
      }
      // Pop frame; fold lowlink into parent, emit SCC if V is a root.
      if (LowLink[V] == static_cast<uint32_t>(Index[V])) {
        while (true) {
          uint32_t W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          SccOf[W] = NextScc;
          if (W == V)
            break;
        }
        ++NextScc;
      }
      uint32_t Low = LowLink[V];
      Frames.pop_back();
      if (!Frames.empty()) {
        uint32_t Parent = Frames.back().first;
        LowLink[Parent] = std::min(LowLink[Parent], Low);
      }
    }
  }

  void push(uint32_t V) {
    Index[V] = static_cast<int32_t>(NextIndex);
    LowLink[V] = NextIndex;
    ++NextIndex;
    Stack.push_back(V);
    OnStack[V] = true;
  }

  const std::vector<std::vector<uint32_t>> &Adj;
  std::vector<int32_t> Index;
  std::vector<uint32_t> LowLink;
  std::vector<bool> OnStack;
  std::vector<uint32_t> SccOf;
  std::vector<uint32_t> Stack;
  uint32_t NextIndex = 0;
  uint32_t NextScc = 0;
};

} // namespace

CallGraph pbt::buildCallGraph(const Program &Prog) {
  CallGraph Cg;
  size_t N = Prog.Procs.size();
  Cg.Callees.resize(N);
  Cg.Callers.resize(N);

  for (const Procedure &P : Prog.Procs) {
    for (const BasicBlock &BB : P.Blocks) {
      int32_t Callee = BB.calleeOrNone();
      if (Callee < 0)
        continue;
      Cg.Callees[P.Id].push_back(static_cast<uint32_t>(Callee));
    }
    auto &List = Cg.Callees[P.Id];
    std::sort(List.begin(), List.end());
    List.erase(std::unique(List.begin(), List.end()), List.end());
    for (uint32_t Callee : List)
      Cg.Callers[Callee].push_back(P.Id);
  }

  TarjanScc Scc(Cg.Callees);
  Scc.run();
  Cg.SccId = Scc.SccOfNode();

  // Tarjan emits SCCs in reverse topological order of the condensation:
  // an SCC is emitted only after all SCCs it can reach. Ordering
  // procedures by ascending SCC id therefore yields callees-first.
  Cg.BottomUpOrder.resize(N);
  for (uint32_t I = 0; I < N; ++I)
    Cg.BottomUpOrder[I] = I;
  std::stable_sort(Cg.BottomUpOrder.begin(), Cg.BottomUpOrder.end(),
                   [&](uint32_t A, uint32_t B) {
                     return Cg.SccId[A] < Cg.SccId[B];
                   });
  return Cg;
}

//===- analysis/KMeans.cpp - 2-D k-means clustering ------------------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/KMeans.h"

#include <cassert>
#include <cmath>
#include <limits>

using namespace pbt;

static double sqDist(const Point2D &A, const Point2D &B) {
  double Dx = A[0] - B[0];
  double Dy = A[1] - B[1];
  return Dx * Dx + Dy * Dy;
}

KMeansResult pbt::kmeans(const std::vector<Point2D> &Points, uint32_t K,
                         Rng &Gen, uint32_t MaxIterations) {
  assert(K >= 1 && "need at least one cluster");
  assert(!Points.empty() && "need at least one point");

  KMeansResult Result;
  size_t N = Points.size();

  // k-means++ seeding: first centroid uniform, the rest D^2-weighted.
  Result.Centroids.push_back(Points[Gen.nextBelow(N)]);
  std::vector<double> BestDist(N, std::numeric_limits<double>::max());
  while (Result.Centroids.size() < K) {
    double Total = 0;
    for (size_t I = 0; I < N; ++I) {
      BestDist[I] =
          std::min(BestDist[I], sqDist(Points[I], Result.Centroids.back()));
      Total += BestDist[I];
    }
    size_t Chosen = 0;
    if (Total <= 0) {
      // All points coincide with existing centroids; pick any.
      Chosen = Gen.nextBelow(N);
    } else {
      double Target = Gen.nextDouble() * Total;
      double Acc = 0;
      for (size_t I = 0; I < N; ++I) {
        Acc += BestDist[I];
        if (Acc >= Target) {
          Chosen = I;
          break;
        }
      }
    }
    Result.Centroids.push_back(Points[Chosen]);
  }

  Result.Assign.assign(N, 0);
  for (uint32_t Iter = 0; Iter < MaxIterations; ++Iter) {
    ++Result.Iterations;
    bool Changed = false;

    // Assignment step.
    for (size_t I = 0; I < N; ++I) {
      uint32_t Best = 0;
      double BestD = std::numeric_limits<double>::max();
      for (uint32_t C = 0; C < K; ++C) {
        double D = sqDist(Points[I], Result.Centroids[C]);
        if (D < BestD) {
          BestD = D;
          Best = C;
        }
      }
      if (Result.Assign[I] != Best) {
        Result.Assign[I] = Best;
        Changed = true;
      }
    }

    // Update step; reseed empty clusters onto the farthest point.
    std::vector<Point2D> Sums(K, {0, 0});
    std::vector<uint32_t> Counts(K, 0);
    for (size_t I = 0; I < N; ++I) {
      Sums[Result.Assign[I]][0] += Points[I][0];
      Sums[Result.Assign[I]][1] += Points[I][1];
      ++Counts[Result.Assign[I]];
    }
    for (uint32_t C = 0; C < K; ++C) {
      if (Counts[C] > 0) {
        Result.Centroids[C] = {Sums[C][0] / Counts[C],
                               Sums[C][1] / Counts[C]};
        continue;
      }
      size_t Farthest = 0;
      double FarD = -1;
      for (size_t I = 0; I < N; ++I) {
        double D = sqDist(Points[I], Result.Centroids[Result.Assign[I]]);
        if (D > FarD) {
          FarD = D;
          Farthest = I;
        }
      }
      Result.Centroids[C] = Points[Farthest];
      Result.Assign[Farthest] = C;
      Changed = true;
    }

    if (!Changed)
      break;
  }

  Result.Inertia = 0;
  for (size_t I = 0; I < N; ++I)
    Result.Inertia += sqDist(Points[I], Result.Centroids[Result.Assign[I]]);
  return Result;
}

//===- analysis/KMeans.h - 2-D k-means clustering ---------------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lloyd's k-means with k-means++ seeding over 2-D points, cited by the
/// paper (MacQueen 1967) for grouping basic blocks in the typing space.
/// Deterministic for a given RNG seed.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ANALYSIS_KMEANS_H
#define PBT_ANALYSIS_KMEANS_H

#include "support/Rng.h"

#include <array>
#include <cstdint>
#include <vector>

namespace pbt {

using Point2D = std::array<double, 2>;

/// Result of a k-means run.
struct KMeansResult {
  /// Cluster index per input point.
  std::vector<uint32_t> Assign;
  /// Final centroids (size k).
  std::vector<Point2D> Centroids;
  /// Lloyd iterations executed.
  uint32_t Iterations = 0;
  /// Sum of squared distances to assigned centroids.
  double Inertia = 0;
};

/// Clusters \p Points into \p K groups. When there are fewer distinct
/// points than K, surplus clusters end up empty and are reseeded onto the
/// farthest points, so every cluster index in [0, K) remains valid.
/// Asserts K >= 1 and Points non-empty.
KMeansResult kmeans(const std::vector<Point2D> &Points, uint32_t K, Rng &Gen,
                    uint32_t MaxIterations = 100);

} // namespace pbt

#endif // PBT_ANALYSIS_KMEANS_H

//===- analysis/Intervals.cpp - Allen-Cocke interval partition -----------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Intervals.h"

#include "analysis/CfgAlgorithms.h"

#include <cassert>
#include <deque>

using namespace pbt;

IntervalPartition pbt::computeIntervals(const Procedure &P) {
  IntervalPartition Partition;
  size_t N = P.Blocks.size();
  constexpr uint32_t None = UINT32_MAX;
  Partition.IntervalOf.assign(N, None);

  CfgDfsResult Dfs = runDfs(P);
  auto Preds = predecessors(P);

  std::vector<bool> IsHeader(N, false);
  std::deque<uint32_t> Headers;
  Headers.push_back(0);
  IsHeader[0] = true;

  while (!Headers.empty()) {
    uint32_t Header = Headers.front();
    Headers.pop_front();

    uint32_t IntervalIndex = static_cast<uint32_t>(Partition.Intervals.size());
    Partition.Intervals.push_back({Header, {Header}});
    Partition.IntervalOf[Header] = IntervalIndex;
    Interval &I = Partition.Intervals.back();

    // Grow: repeatedly absorb any reachable block all of whose
    // predecessors are already inside the interval.
    bool Grew = true;
    while (Grew) {
      Grew = false;
      for (uint32_t Block = 0; Block < N; ++Block) {
        if (!Dfs.Reachable[Block] || Partition.IntervalOf[Block] != None ||
            IsHeader[Block])
          continue;
        if (Preds[Block].empty())
          continue;
        bool AllInside = true;
        for (uint32_t Pred : Preds[Block]) {
          if (!Dfs.Reachable[Pred])
            continue;
          if (Partition.IntervalOf[Pred] != IntervalIndex) {
            AllInside = false;
            break;
          }
        }
        if (!AllInside)
          continue;
        Partition.IntervalOf[Block] = IntervalIndex;
        I.Blocks.push_back(Block);
        Grew = true;
      }
    }

    // New headers: blocks outside every interval so far with at least one
    // predecessor inside this one.
    for (uint32_t Member : I.Blocks) {
      for (uint32_t Succ : P.Blocks[Member].Succs) {
        if (Partition.IntervalOf[Succ] != None || IsHeader[Succ])
          continue;
        IsHeader[Succ] = true;
        Headers.push_back(Succ);
      }
    }
  }

  // Totalize over unreachable blocks.
  for (uint32_t Block = 0; Block < N; ++Block) {
    if (Partition.IntervalOf[Block] != None)
      continue;
    Partition.IntervalOf[Block] =
        static_cast<uint32_t>(Partition.Intervals.size());
    Partition.Intervals.push_back({Block, {Block}});
  }

  return Partition;
}

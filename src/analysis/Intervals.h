//===- analysis/Intervals.h - Allen-Cocke interval partition ---*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval partition per Allen's "Control flow analysis" (1970), the
/// algorithm the paper cites: "An interval i(h) corresponding to a node h
/// is the maximal, single entry subgraph for which h is the entry node and
/// in which all closed paths contain h." The paper's second phase-marking
/// strategy summarizes each interval into a single phase type.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ANALYSIS_INTERVALS_H
#define PBT_ANALYSIS_INTERVALS_H

#include "ir/Program.h"

#include <cstdint>
#include <vector>

namespace pbt {

/// One interval: header plus member blocks.
struct Interval {
  uint32_t Header = 0;
  /// Member blocks in the order the construction added them (header
  /// first); this is also a valid traversal order for summarization.
  std::vector<uint32_t> Blocks;
};

/// First-order interval partition of a procedure. Every reachable block
/// belongs to exactly one interval; unreachable blocks are placed in
/// singleton intervals at the end so the mapping is total.
struct IntervalPartition {
  std::vector<Interval> Intervals;
  /// Per block: index of its interval in Intervals.
  std::vector<uint32_t> IntervalOf;
};

/// Computes the first-order interval partition of \p P.
IntervalPartition computeIntervals(const Procedure &P);

} // namespace pbt

#endif // PBT_ANALYSIS_INTERVALS_H

//===- analysis/PassManager.h - Static-pipeline pass manager ---*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static preparation pipeline as an iterative pass manager, the
/// IterativeModulePass idiom of whole-program analysis frameworks: each
/// stage of suite preparation — cost-model binding, typing, error
/// injection, transition marking, instrumentation, flat-image fusion —
/// is a named ProgramPass over per-program state, and the manager runs
/// doInitialization for every pass, iterates every pass's doProgramPass
/// over every program until a full round reports no change (the
/// cross-program fixpoint), then runs doFinalization. Passes are
/// idempotent (they report a change only when they computed something
/// that was not there yet), so the fixpoint is reached in one working
/// round plus one quiescent round today; passes with genuine
/// cross-program propagation can extend the loop without touching the
/// manager.
///
/// Per-program steps are independent and fan out over a ThreadPool with
/// by-index writes, so pipeline output is bit-identical to the serial
/// loop — and to the pre-pass-manager monolithic prepareSuite, which is
/// the promotion contract tests/passmanager_test.cpp enforces.
///
/// The pipeline finishes with self-verification: VerifyPass is a static
/// analysis of our *own* IR and derived images that checks structural
/// invariants — Program::verify, CFG/dominator/loop consistency, typing
/// shape, mark-placement legality, flat-image global-block-id
/// contiguity, cost-table binding, and superblock-chain summaries
/// re-walked against the exact block walk. Under the verify-IR toggle
/// (driver `--verify-ir` or env `PBT_VERIFY_IR`) the manager reruns the
/// verification sweep after every pass of every round, so a pass that
/// corrupts state is caught at the pass boundary that broke it.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_ANALYSIS_PASSMANAGER_H
#define PBT_ANALYSIS_PASSMANAGER_H

#include "analysis/BlockTyping.h"
#include "core/Transitions.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace pbt {

class CostModel;
class FlatImage;
class InstrumentedProgram;
class ThreadPool;
struct MachineConfig;
struct PreparedSuite;
struct TechniqueSpec;

/// The evolving prepared state of one program as it moves through the
/// pipeline. Stages fill their slot and leave the rest alone; the
/// "present" flags (and null tests on the shared_ptrs) are what makes
/// every pass idempotent.
struct ProgramPrep {
  /// The source program; owned by the caller, outlives the run.
  const Program *Prog = nullptr;
  /// Cost-model binding of Prog to the machine (cost-model pass).
  std::shared_ptr<const CostModel> Cost;
  /// Phase-type assignment (typing pass; absent for the baseline).
  ProgramTyping Typing;
  bool Typed = false;
  /// Whether the clustering-error pass already perturbed Typing.
  bool ErrorInjected = false;
  /// Transition analysis output (transitions pass). Moved into the
  /// image by the instrument pass, after which Image carries the marks.
  MarkingResult Marking;
  bool Marked = false;
  /// Instrumented program (instrument pass).
  std::shared_ptr<const InstrumentedProgram> Image;
  /// Fused flat execution image (flatten pass).
  std::shared_ptr<const FlatImage> Flat;
};

/// Everything a pipeline run sees: the preparation request plus one
/// ProgramPrep per program. Pointees are owned by the caller.
struct PipelineContext {
  const MachineConfig *Machine = nullptr;
  const TechniqueSpec *Tech = nullptr;
  uint64_t TypingSeed = 42;
  /// Run the verification sweep after every pass (see VerifyPass).
  bool VerifyIR = false;
  std::vector<ProgramPrep> Programs;
  /// Pool for the per-program fan-out; the global pool when null.
  ThreadPool *Pool = nullptr;
};

/// One named stage of the static pipeline. Implementations must be
/// idempotent: doProgramPass returns true only when it computed state
/// that was not present yet, so a quiescent round ends the fixpoint.
/// doProgramPass may run concurrently for different programs and must
/// touch only its own ProgramPrep (plus the read-only context).
class ProgramPass {
public:
  virtual ~ProgramPass();

  virtual const char *name() const = 0;

  /// Whole-context setup before the first round. Returns true when it
  /// changed pipeline state.
  virtual bool doInitialization(PipelineContext &Ctx);

  /// One per-program step; returns true when it changed \p PC.
  virtual bool doProgramPass(ProgramPrep &PC,
                             const PipelineContext &Ctx) = 0;

  /// Whole-context wrap-up after the fixpoint. Returns true when it
  /// changed pipeline state.
  virtual bool doFinalization(PipelineContext &Ctx);
};

/// Per-pass counters of one pipeline run (or the process-wide
/// cumulative view). ProgramsChanged and Invocations are deterministic;
/// Seconds is wall time and must never feed a byte-compared artifact
/// (the driver surfaces it only in BENCH_driver.json, which is excluded
/// from every byte-identity check).
struct PassStats {
  std::string Name;
  /// doProgramPass calls, summed over rounds.
  uint64_t Invocations = 0;
  /// Calls that reported a change.
  uint64_t ProgramsChanged = 0;
  /// Wall time of the pass's sweeps (init + per-program + finalize).
  double Seconds = 0;
};

/// Outcome of one PassManager::run.
struct PipelineStats {
  /// Full rounds executed, including the quiescent one that ended the
  /// fixpoint.
  uint32_t Rounds = 0;
  std::vector<PassStats> Passes;
};

/// Runs registered passes over a PipelineContext to the cross-program
/// fixpoint, collecting per-pass stats. See the file comment for the
/// exact phase order.
class PassManager {
public:
  PassManager();
  PassManager(PassManager &&) = default;
  PassManager &operator=(PassManager &&) = default;
  ~PassManager();

  void add(std::unique_ptr<ProgramPass> Pass);
  size_t size() const { return Passes.size(); }

  /// Runs the pipeline on \p Ctx: every pass's doInitialization, then
  /// rounds of every pass's doProgramPass over every program until a
  /// round reports no change, then every pass's doFinalization. When
  /// Ctx.VerifyIR is set, a verification sweep runs after every pass
  /// (throwing std::runtime_error naming the pass, program, and broken
  /// invariant on failure). Stats are also accumulated into the
  /// process-wide cumulativePipelineStats().
  PipelineStats run(PipelineContext &Ctx) const;

private:
  std::vector<std::unique_ptr<ProgramPass>> Passes;
};

/// The fixed preparation pipeline: cost-model, typing, error-inject,
/// transitions, instrument, flatten. prepareSuite runs exactly this.
PassManager buildPreparationPipeline();

/// Builds a PipelineContext for preparing \p Programs (which must
/// outlive the context) with the VerifyIR flag seeded from the
/// process-wide toggle.
PipelineContext makePipelineContext(const std::vector<Program> &Programs,
                                    const MachineConfig &Machine,
                                    const TechniqueSpec &Tech,
                                    uint64_t TypingSeed,
                                    ThreadPool *Pool = nullptr);

/// VerifyPass's per-program check, usable standalone: validates every
/// artifact present in \p PC against the invariants in the file
/// comment. On failure writes a diagnostic to \p ErrorOut (when
/// non-null) and returns false.
bool verifyPrep(const ProgramPrep &PC, const PipelineContext &Ctx,
                std::string *ErrorOut = nullptr);

/// Verifies a finished suite (freshly prepared or loaded from the
/// store): every program's image, cost binding, and flat image.
bool verifyPrepared(const PreparedSuite &Suite, const MachineConfig &Machine,
                    std::string *ErrorOut = nullptr);

/// Process-wide verify-IR toggle. Defaults to the PBT_VERIFY_IR
/// environment variable (any non-empty value other than "0" enables);
/// the driver's `--verify-ir` flag calls the setter.
void setVerifyIR(bool Enabled);
bool verifyIREnabled();

/// Cumulative per-pass stats over every pipeline run of this process
/// (passes in first-seen order), for the driver's summary block.
PipelineStats cumulativePipelineStats();

} // namespace pbt

#endif // PBT_ANALYSIS_PASSMANAGER_H

//===- analysis/CfgAlgorithms.cpp - DFS, edges, preds ---------------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CfgAlgorithms.h"

#include <algorithm>

using namespace pbt;

bool CfgDfsResult::isBackEdge(uint32_t Src, uint32_t SuccIndex) const {
  CfgEdge Probe{Src, SuccIndex};
  return std::binary_search(BackEdges.begin(), BackEdges.end(), Probe);
}

CfgDfsResult pbt::runDfs(const Procedure &P) {
  CfgDfsResult Result;
  size_t N = P.Blocks.size();
  Result.Reachable.assign(N, false);

  // Iterative DFS with an explicit frame (block, next successor index).
  // OnStack tracks the grey set for back-edge classification.
  std::vector<bool> OnStack(N, false);
  std::vector<std::pair<uint32_t, uint32_t>> Stack;
  Stack.reserve(N);

  Stack.emplace_back(0, 0);
  Result.Reachable[0] = true;
  OnStack[0] = true;
  Result.Preorder.push_back(0);

  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    const BasicBlock &BB = P.Blocks[Block];
    if (NextSucc >= BB.Succs.size()) {
      Result.Postorder.push_back(Block);
      OnStack[Block] = false;
      Stack.pop_back();
      continue;
    }
    uint32_t SuccIndex = NextSucc++;
    uint32_t Target = BB.Succs[SuccIndex];
    if (OnStack[Target]) {
      Result.BackEdges.push_back({Block, SuccIndex});
      continue;
    }
    if (Result.Reachable[Target])
      continue;
    Result.Reachable[Target] = true;
    OnStack[Target] = true;
    Result.Preorder.push_back(Target);
    Stack.emplace_back(Target, 0);
  }

  std::sort(Result.BackEdges.begin(), Result.BackEdges.end());
  return Result;
}

std::vector<std::vector<uint32_t>> pbt::predecessors(const Procedure &P) {
  std::vector<std::vector<uint32_t>> Preds(P.Blocks.size());
  for (const BasicBlock &BB : P.Blocks)
    for (uint32_t Succ : BB.Succs)
      Preds[Succ].push_back(BB.Id);
  return Preds;
}

std::vector<uint32_t> pbt::reversePostorder(const Procedure &P) {
  CfgDfsResult Dfs = runDfs(P);
  std::vector<uint32_t> Rpo(Dfs.Postorder.rbegin(), Dfs.Postorder.rend());
  return Rpo;
}

//===- analysis/NaturalLoops.cpp - Natural loops and nesting -------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/NaturalLoops.h"

#include "analysis/CfgAlgorithms.h"
#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace pbt;

bool Loop::contains(uint32_t Block) const {
  return std::binary_search(Blocks.begin(), Blocks.end(), Block);
}

bool LoopInfo::strictlyNested(uint32_t Inner, uint32_t Outer) const {
  assert(Inner < Loops.size() && Outer < Loops.size() && "loop out of range");
  int32_t Cursor = Loops[Inner].Parent;
  while (Cursor >= 0) {
    if (static_cast<uint32_t>(Cursor) == Outer)
      return true;
    Cursor = Loops[static_cast<uint32_t>(Cursor)].Parent;
  }
  return false;
}

LoopInfo pbt::computeLoops(const Procedure &P) {
  LoopInfo Info;
  size_t N = P.Blocks.size();
  Info.InnermostLoop.assign(N, -1);

  CfgDfsResult Dfs = runDfs(P);
  DominatorTree Dom(P);
  auto Preds = predecessors(P);

  // Collect natural loops per header: for each back edge (t -> h) with
  // h dom t, the loop body is h plus all blocks that reach t without
  // passing through h.
  std::map<uint32_t, std::set<uint32_t>> BodyByHeader;
  for (const CfgEdge &Edge : Dfs.BackEdges) {
    uint32_t Tail = Edge.Src;
    uint32_t Header = P.Blocks[Tail].Succs[Edge.SuccIndex];
    if (!Dom.dominates(Header, Tail))
      continue; // Irreducible edge: not a natural loop; skip it.
    std::set<uint32_t> &Body = BodyByHeader[Header];
    Body.insert(Header);
    if (Body.count(Tail))
      continue;
    std::vector<uint32_t> Work{Tail};
    Body.insert(Tail);
    while (!Work.empty()) {
      uint32_t Block = Work.back();
      Work.pop_back();
      for (uint32_t Pred : Preds[Block]) {
        if (!Dfs.Reachable[Pred] || Body.count(Pred))
          continue;
        Body.insert(Pred);
        Work.push_back(Pred);
      }
    }
  }

  for (auto &[Header, Body] : BodyByHeader) {
    Loop L;
    L.Header = Header;
    L.Blocks.assign(Body.begin(), Body.end());
    Info.Loops.push_back(std::move(L));
  }

  // Nesting: sort loop indices by size ascending; the parent of a loop is
  // the smallest strictly-larger loop containing its header. With merged
  // headers, containment of the header implies containment of the body.
  std::vector<uint32_t> BySize(Info.Loops.size());
  for (uint32_t I = 0; I < BySize.size(); ++I)
    BySize[I] = I;
  std::sort(BySize.begin(), BySize.end(), [&](uint32_t A, uint32_t B) {
    if (Info.Loops[A].Blocks.size() != Info.Loops[B].Blocks.size())
      return Info.Loops[A].Blocks.size() < Info.Loops[B].Blocks.size();
    return Info.Loops[A].Header < Info.Loops[B].Header;
  });

  for (size_t I = 0; I < BySize.size(); ++I) {
    uint32_t Inner = BySize[I];
    for (size_t J = I + 1; J < BySize.size(); ++J) {
      uint32_t Outer = BySize[J];
      if (Info.Loops[Outer].Blocks.size() <=
          Info.Loops[Inner].Blocks.size())
        continue;
      if (Info.Loops[Outer].contains(Info.Loops[Inner].Header)) {
        Info.Loops[Inner].Parent = static_cast<int32_t>(Outer);
        Info.Loops[Outer].Children.push_back(Inner);
        break;
      }
    }
  }

  // Depths: walk parent chains (forest is shallow; fine to be quadratic).
  for (uint32_t I = 0; I < Info.Loops.size(); ++I) {
    uint32_t Depth = 1;
    int32_t Cursor = Info.Loops[I].Parent;
    while (Cursor >= 0) {
      ++Depth;
      Cursor = Info.Loops[static_cast<uint32_t>(Cursor)].Parent;
    }
    Info.Loops[I].Depth = Depth;
  }

  // Innermost-loop map: visit loops from outermost (largest) to innermost
  // (smallest) so the smallest containing loop wins.
  for (auto It = BySize.rbegin(); It != BySize.rend(); ++It)
    for (uint32_t Block : Info.Loops[*It].Blocks)
      Info.InnermostLoop[Block] = static_cast<int32_t>(*It);

  return Info;
}

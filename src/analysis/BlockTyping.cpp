//===- analysis/BlockTyping.cpp - Static phase types Π --------------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/BlockTyping.h"

#include "analysis/KMeans.h"
#include "support/Rng.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace pbt;

double ProgramTyping::disagreement(const ProgramTyping &Other) const {
  assert(TypeOf.size() == Other.TypeOf.size() && "program shape mismatch");
  size_t Total = 0;
  size_t Differ = 0;
  for (size_t P = 0; P < TypeOf.size(); ++P) {
    assert(TypeOf[P].size() == Other.TypeOf[P].size() &&
           "procedure shape mismatch");
    for (size_t B = 0; B < TypeOf[P].size(); ++B) {
      ++Total;
      if (TypeOf[P][B] != Other.TypeOf[P][B])
        ++Differ;
    }
  }
  return Total == 0 ? 0.0
                    : static_cast<double>(Differ) / static_cast<double>(Total);
}

ProgramTyping pbt::computeStaticTyping(const Program &Prog,
                                       const TypingConfig &Config) {
  assert(Config.NumTypes >= 1 && "need at least one phase type");
  ProgramTyping Typing;
  Typing.NumTypes = Config.NumTypes;
  Typing.TypeOf.resize(Prog.Procs.size());

  // Flatten all blocks into one point cloud so the clustering is global:
  // the same phase type can span procedures (the paper's clusters are
  // program-wide).
  std::vector<Point2D> Points;
  std::vector<std::pair<uint32_t, uint32_t>> Owner;
  for (const Procedure &P : Prog.Procs) {
    Typing.TypeOf[P.Id].assign(P.Blocks.size(), 0);
    for (const BasicBlock &BB : P.Blocks) {
      BlockFeatures F = computeFeatures(BB, Config.ReferenceCacheLines);
      Points.push_back(F.typingPoint());
      Owner.emplace_back(P.Id, BB.Id);
    }
  }
  if (Points.empty())
    return Typing;

  // Normalize each axis to [0, 1] so the two feature scales are
  // commensurate before clustering.
  for (int Axis = 0; Axis < 2; ++Axis) {
    double Lo = Points[0][Axis];
    double Hi = Points[0][Axis];
    for (const Point2D &Pt : Points) {
      Lo = std::min(Lo, Pt[Axis]);
      Hi = std::max(Hi, Pt[Axis]);
    }
    double Span = Hi - Lo;
    if (Span <= 0)
      continue;
    for (Point2D &Pt : Points)
      Pt[Axis] = (Pt[Axis] - Lo) / Span;
  }

  Rng Gen(Config.Seed);
  KMeansResult Clusters = kmeans(Points, Config.NumTypes, Gen);

  // Canonicalize: order cluster labels by ascending centroid position
  // along (memory axis + cache axis), so type 0 is the most compute-bound
  // regardless of k-means initialization.
  std::vector<uint32_t> ByScore(Config.NumTypes);
  std::iota(ByScore.begin(), ByScore.end(), 0);
  auto Score = [&](uint32_t C) {
    return Clusters.Centroids[C][0] + Clusters.Centroids[C][1];
  };
  std::sort(ByScore.begin(), ByScore.end(),
            [&](uint32_t A, uint32_t B) { return Score(A) < Score(B); });
  std::vector<uint32_t> Relabel(Config.NumTypes);
  for (uint32_t NewLabel = 0; NewLabel < Config.NumTypes; ++NewLabel)
    Relabel[ByScore[NewLabel]] = NewLabel;

  for (size_t I = 0; I < Points.size(); ++I) {
    auto [ProcId, BlockId] = Owner[I];
    Typing.TypeOf[ProcId][BlockId] = Relabel[Clusters.Assign[I]];
  }
  return Typing;
}

//===- workload/Runner.cpp - Experiment preparation & execution -----------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Runner.h"

#include "analysis/BlockTyping.h"
#include "analysis/PassManager.h"
#include "obs/Trace.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <deque>

using namespace pbt;

std::string TechniqueSpec::label() const {
  if (Baseline)
    return "Linux";
  std::string Out = Transition.label();
  if (UseStaticTyping)
    Out += "+static";
  if (TypingError > 0) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "+err%g%%", 100.0 * TypingError);
    Out += Buf;
  }
  return Out;
}

uint64_t TechniqueSpec::preparationHash() const {
  uint64_t H = hashCombine(0x5E17E3, Baseline ? 1 : 0);
  H = hashCombine(H, hashValue(Transition));
  H = hashCombine(H, UseStaticTyping ? 1 : 0);
  H = hashCombine(H, hashDouble(TypingError));
  return hashCombine(H, hashValue(Cost));
}

uint64_t pbt::hashValue(const TechniqueSpec &Tech) {
  return hashCombine(Tech.preparationHash(), hashValue(Tech.Tuner));
}

namespace {

/// The full static pipeline for one program: cost model, typing, marking,
/// instrumentation, flat image. Pure function of its arguments, so the
/// per-program calls can run on any thread in any order.
PreparedProgram prepareOne(const Program &Prog, const MachineConfig &Machine,
                           const TechniqueSpec &Tech, uint64_t TypingSeed) {
  PreparedProgram Out;
  auto Cost = std::make_shared<const CostModel>(Prog, Machine);

  MarkingResult Marking;
  if (Tech.Baseline) {
    // Uninstrumented image: no marks; region typing is irrelevant.
    Marking.NumTypes = 1;
    Marking.RegionType.resize(Prog.Procs.size());
  } else {
    ProgramTyping Typing;
    if (Tech.UseStaticTyping) {
      TypingConfig Config;
      Config.Seed = TypingSeed;
      Typing = computeStaticTyping(Prog, Config);
    } else {
      Typing = computeOracleTyping(Prog, *Cost);
    }
    if (Tech.TypingError > 0)
      Typing = injectClusteringError(Typing, Tech.TypingError,
                                     TypingSeed ^ 0xE77);
    Marking = computeTransitions(Prog, Typing, Tech.Transition);
  }

  Out.Image = std::make_shared<const InstrumentedProgram>(
      Prog, std::move(Marking), Tech.Cost);
  Out.Cost = std::move(Cost);
  Out.Flat = std::make_shared<const FlatImage>(Out.Image, Out.Cost);
  return Out;
}

} // namespace

std::vector<PreparedProgram>
pbt::preparePrograms(const std::vector<Program> &Programs,
                     const MachineConfig &Machine, const TechniqueSpec &Tech,
                     uint64_t TypingSeed, ThreadPool *Pool) {
  PipelineContext Ctx =
      makePipelineContext(Programs, Machine, Tech, TypingSeed, Pool);
  buildPreparationPipeline().run(Ctx);

  std::vector<PreparedProgram> Out(Programs.size());
  for (size_t Index = 0; Index < Programs.size(); ++Index) {
    Out[Index].Image = std::move(Ctx.Programs[Index].Image);
    Out[Index].Cost = std::move(Ctx.Programs[Index].Cost);
    Out[Index].Flat = std::move(Ctx.Programs[Index].Flat);
  }
  return Out;
}

PreparedSuite pbt::prepareSuite(const std::vector<Program> &Programs,
                                const MachineConfig &Machine,
                                const TechniqueSpec &Tech,
                                uint64_t TypingSeed, ThreadPool *Pool) {
  std::vector<PreparedProgram> Prepared =
      preparePrograms(Programs, Machine, Tech, TypingSeed, Pool);

  PreparedSuite Suite;
  Suite.Tuner = Tech.Tuner;
  for (size_t Index = 0; Index < Programs.size(); ++Index) {
    Suite.Names.push_back(Programs[Index].Name);
    Suite.Images.push_back(std::move(Prepared[Index].Image));
    Suite.Costs.push_back(std::move(Prepared[Index].Cost));
    Suite.Flats.push_back(std::move(Prepared[Index].Flat));
  }
  return Suite;
}

PreparedSuite pbt::prepareSuiteMonolithic(const std::vector<Program> &Programs,
                                          const MachineConfig &Machine,
                                          const TechniqueSpec &Tech,
                                          uint64_t TypingSeed,
                                          ThreadPool *Pool) {
  // The legacy path: one monolithic prepareOne per program, fanned out
  // over the pool with by-index writes. Kept verbatim so tests can
  // assert the pass-manager pipeline reproduces it bit for bit.
  std::vector<PreparedProgram> Prepared(Programs.size());
  ThreadPool &P = Pool ? *Pool : ThreadPool::global();
  P.parallelFor(Programs.size(), [&](size_t Index) {
    Prepared[Index] =
        prepareOne(Programs[Index], Machine, Tech, TypingSeed);
  });

  PreparedSuite Suite;
  Suite.Tuner = Tech.Tuner;
  for (size_t Index = 0; Index < Programs.size(); ++Index) {
    Suite.Names.push_back(Programs[Index].Name);
    Suite.Images.push_back(std::move(Prepared[Index].Image));
    Suite.Costs.push_back(std::move(Prepared[Index].Cost));
    Suite.Flats.push_back(std::move(Prepared[Index].Flat));
  }
  return Suite;
}

std::vector<double>
pbt::isolatedRuntimes(const std::vector<Program> &Programs,
                      const MachineConfig &MachineCfg, const SimConfig &Sim) {
  TechniqueSpec Base = TechniqueSpec::baseline();
  PreparedSuite Suite = prepareSuite(Programs, MachineCfg, Base);
  return isolatedRuntimes(Suite, MachineCfg, Sim);
}

std::vector<double> pbt::isolatedRuntimes(const PreparedSuite &BaselineSuite,
                                          const MachineConfig &MachineCfg,
                                          const SimConfig &Sim) {
  std::vector<double> Times(BaselineSuite.Images.size(), 0.0);
  ThreadPool::global().parallelFor(Times.size(), [&](size_t Bench) {
    CompletedJob Job = runIsolated(BaselineSuite,
                                   static_cast<uint32_t>(Bench), MachineCfg,
                                   Sim);
    Times[Bench] = Job.Completion - Job.Arrival;
  });
  return Times;
}

CompletedJob pbt::runIsolated(const PreparedSuite &Suite, uint32_t Bench,
                              const MachineConfig &MachineCfg,
                              const SimConfig &Sim, uint64_t Seed) {
  Machine M(MachineCfg, Sim, std::make_unique<ObliviousScheduler>());
  uint32_t Pid =
      M.spawn(Suite.Images[Bench], Suite.Costs[Bench], Suite.Tuner, Seed,
              /*Slot=*/-1, /*InitialAffinity=*/0, Suite.Flats[Bench]);
  // Advance until the process finishes.
  double Step = 64;
  while (M.process(Pid).CompletionTime < 0) {
    M.run(M.now() + Step);
    assert(M.now() < 1e7 && "isolated benchmark failed to terminate");
  }
  const Process &P = M.process(Pid);
  CompletedJob Job;
  Job.Bench = Bench;
  Job.Arrival = P.ArrivalTime;
  Job.Admitted = P.ArrivalTime;
  Job.Completion = P.CompletionTime;
  Job.Stats = P.Stats;
  return Job;
}

RunResult pbt::runWorkload(const PreparedSuite &Suite, const Workload &W,
                           const MachineConfig &MachineCfg,
                           const SimConfig &Sim, double Horizon,
                           const std::vector<double> &Isolated,
                           const SchedulerSpec &Sched,
                           const ScenarioSpec &Scenario,
                           const CompletionSink &OnCompleted,
                           obs::TraceSink *Trace) {
  RunResult Result;
  Result.Horizon = Horizon;

  Machine M(MachineCfg, Sim, Sched.makeScheduler());
  if (Trace)
    M.setTraceSink(Trace);

  std::vector<uint32_t> BenchOfPid;
  /// Scheduled arrival instant per pid for open-scenario jobs
  /// (negative sentinel for batch jobs, whose arrival IS the spawn).
  std::vector<double> ArrivalOfPid;
  uint32_t Done = 0;

  auto Spawn = [&](uint32_t Bench, uint64_t Seed, int32_t Slot,
                   double Arrival) {
    uint32_t Pid =
        M.spawn(Suite.Images[Bench], Suite.Costs[Bench], Suite.Tuner, Seed,
                Slot, /*InitialAffinity=*/0, Suite.Flats[Bench]);
    BenchOfPid.push_back(Bench);
    ArrivalOfPid.push_back(Arrival);
    if (Trace)
      Trace->processTrack(Pid, "p" + std::to_string(Pid) + " " +
                                   Suite.Names[Bench]);
    return Pid;
  };

  auto Record = [&](Process &P) {
    CompletedJob Job;
    Job.Bench = BenchOfPid[P.Pid];
    Job.Slot = P.Slot;
    // Open-scenario jobs count from their scheduled arrival, so
    // turnaround includes door-queue and quantum-alignment wait; batch
    // jobs count from the spawn, the classic closed-system convention.
    Job.Arrival =
        ArrivalOfPid[P.Pid] >= 0 ? ArrivalOfPid[P.Pid] : P.ArrivalTime;
    Job.Admitted = P.ArrivalTime;
    Job.Completion = P.CompletionTime;
    if (Job.Bench < Isolated.size())
      Job.Isolated = Isolated[Job.Bench];
    Job.Stats = P.Stats;
    // Sink-fed runs never buffer: the job goes straight to the caller
    // (machine exit order) and memory stays O(1) in completion count.
    if (OnCompleted)
      OnCompleted(Job);
    else
      Result.Completed.push_back(Job);
    ++Done;
    if (Trace)
      // Timestamped at the quantum start of the exit (see the machine's
      // exit event); the cycle-derived CompletionTime stays out of the
      // trace so bytes match across engines.
      Trace->complete(Trace->cycles(M.now()), P.Pid, Job.Bench);
  };

  // Per-slot cursor into the batch job queues; on exit, start the next
  // job of the finished process's slot (constant workload size). Only
  // the batch scenario uses the workload's queues.
  std::vector<uint32_t> NextJob(W.numSlots(), 0);
  auto SpawnSlot = [&](uint32_t Slot) {
    uint32_t Index = NextJob[Slot];
    if (Index >= W.Slots[Slot].size())
      return; // Queue exhausted (workloads should be sized to avoid this).
    ++NextJob[Slot];
    uint32_t Bench = W.Slots[Slot][Index];
    Spawn(Bench, W.jobSeed(Slot, Index), static_cast<int32_t>(Slot),
          /*Arrival=*/-1.0);
  };

  // Open-scenario state: the materialized arrival schedule, plus the
  // door queue of arrivals deferred by the multiprogramming cap.
  std::vector<ScenarioArrival> Arrivals;
  std::deque<ScenarioArrival> Deferred;
  uint32_t InFlight = 0;
  auto Admit = [&](const ScenarioArrival &A) {
    uint32_t Pid = Spawn(A.Bench, A.Seed, /*Slot=*/-1, A.Time);
    ++InFlight;
    if (Trace)
      Trace->admit(Trace->cycles(M.now()), Pid, A.Bench);
  };

  if (Scenario.isBatch()) {
    M.setExitHandler([&](Machine &, Process &P) {
      Record(P);
      if (P.Slot >= 0)
        SpawnSlot(static_cast<uint32_t>(P.Slot));
    });
    // The initial jobs arrive through the machine's injection list at
    // time zero — they spawn at the first quantum start, before any
    // balancing or execution, producing the exact state the classic
    // spawn-before-run loop did (tests/scenario_test.cpp proves the
    // replays bit-identical).
    for (uint32_t Slot = 0; Slot < W.numSlots(); ++Slot)
      M.scheduleAt(0.0, [&SpawnSlot, Slot](Machine &) { SpawnSlot(Slot); });
  } else {
    Arrivals = scenarioArrivals(
        Scenario, static_cast<uint32_t>(Suite.Images.size()), Horizon);
    M.setExitHandler([&](Machine &, Process &P) {
      Record(P);
      --InFlight;
      if (!Deferred.empty() &&
          (Scenario.MaxInFlight == 0 || InFlight < Scenario.MaxInFlight)) {
        Admit(Deferred.front());
        Deferred.pop_front();
      }
    });
    for (const ScenarioArrival &A : Arrivals)
      M.scheduleAt(A.Time, [&, A](Machine &) {
        if (Trace)
          // The stream's scheduled instant, not the quantized fire
          // time: Admitted - Arrival is then visible in the trace as
          // the admission delay.
          Trace->arrival(Trace->cycles(A.Time), A.Bench);
        if (Scenario.MaxInFlight > 0 && InFlight >= Scenario.MaxInFlight)
          Deferred.push_back(A);
        else
          Admit(A);
      });
  }

  if (Scenario.isBatch() && Scenario.MaxJobs == 0) {
    // The classic run: one call, unchanged floating-point clock walk.
    M.run(Horizon);
  } else {
    // Stop-rule runs advance quantum by quantum so the run ends at the
    // end of the quantum that satisfied the rule. The chunked clock
    // walk is bit-identical to one run(Horizon) call: Until is always
    // the exact value the internal Now accumulation reaches next.
    uint32_t Stream = static_cast<uint32_t>(Arrivals.size());
    auto Stopped = [&] {
      if (Scenario.MaxJobs > 0 && Done >= Scenario.MaxJobs)
        return true;
      // An open run whose whole stream completed has nothing left.
      return !Scenario.isBatch() && Done >= Stream;
    };
    while (M.now() < Horizon && !Stopped())
      M.run(M.now() + Sim.Timeslice);
    Result.Horizon = M.now();
  }

  Result.CompletedCount = Done;
  Result.InstructionsRetired = M.totalInstructions();
  for (uint32_t Core = 0; Core < MachineCfg.numCores(); ++Core)
    Result.CoreBusy.push_back(M.coreBusyFraction(Core));
  Result.InstsByType.assign(MachineCfg.numCoreTypes(), 0);
  Result.CyclesByType.assign(MachineCfg.numCoreTypes(), 0.0);
  for (const auto &P : M.processes()) {
    Result.TotalSwitches += P->Stats.CoreSwitches;
    Result.TotalMarks += P->Stats.MarksFired;
    Result.CounterWaits += P->Stats.CounterWaits;
    Result.TotalOverheadCycles += P->Stats.OverheadCycles;
    Result.TotalCycles += P->Stats.CyclesConsumed;
    const SchedTelemetry &T = M.telemetry(P->Pid);
    for (uint32_t Ct = 0; Ct < MachineCfg.numCoreTypes(); ++Ct) {
      Result.InstsByType[Ct] += T.InstsByType[Ct];
      Result.CyclesByType[Ct] += T.CyclesByType[Ct];
    }
  }

  if (Trace)
    Trace->runEnd(Trace->cycles(M.now()), Done, BenchOfPid.size());

  // Canonical row order: completion time with deterministic tie-breaks,
  // so per-benchmark tables come out identical however the simulation
  // interleaved same-quantum exits (and whichever engine produced them).
  std::stable_sort(Result.Completed.begin(), Result.Completed.end(),
                   [](const CompletedJob &A, const CompletedJob &B) {
                     if (A.Completion != B.Completion)
                       return A.Completion < B.Completion;
                     if (A.Slot != B.Slot)
                       return A.Slot < B.Slot;
                     if (A.Arrival != B.Arrival)
                       return A.Arrival < B.Arrival;
                     return A.Bench < B.Bench;
                   });
  return Result;
}

std::vector<RunResult>
pbt::runWorkloads(const std::vector<WorkloadJob> &Jobs) {
  std::vector<RunResult> Results(Jobs.size());
  ThreadPool::global().parallelFor(Jobs.size(), [&](size_t I) {
    const WorkloadJob &Job = Jobs[I];
    assert(Job.Suite && Job.W && Job.Machine && "incomplete workload job");
    static const std::vector<double> NoIsolated;
    // One sink per replay unit, named by the job's deterministic unit
    // id — traces are identical whatever thread runs the job, and
    // whatever else runs concurrently.
    std::unique_ptr<obs::TraceSink> Sink;
    if (!Job.TraceUnit.empty())
      Sink = obs::TraceSink::openForUnit(Job.TraceUnit, Job.TraceGroup);
    Results[I] = runWorkload(*Job.Suite, *Job.W, *Job.Machine, Job.Sim,
                             Job.Horizon,
                             Job.Isolated ? *Job.Isolated : NoIsolated,
                             Job.Sched, Job.Scenario,
                             /*OnCompleted=*/nullptr, Sink.get());
  });
  return Results;
}

//===- workload/Benchmarks.h - SPEC-like synthetic suite --------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 15-program synthetic suite standing in for the SPEC CPU 2000/2006
/// benchmarks of the paper's evaluation (Table 1). Each program is
/// generated from a declarative spec: an optional outer loop alternating
/// between *phases* (compute-bound or memory-bound inner loops, some
/// placed in callee procedures to exercise the inter-procedural
/// analysis). Specs are calibrated so that
///
///  - relative isolated runtimes follow Table 1's ordering (log-
///    compressed into simulated seconds),
///  - per-benchmark phase-transition counts mirror Table 1's switch
///    counts (e.g. "equake" alternates thousands of times, "GemsFDTD"
///    and "astar" are single-phase and never transition).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_WORKLOAD_BENCHMARKS_H
#define PBT_WORKLOAD_BENCHMARKS_H

#include "ir/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace pbt {

/// One phase of a benchmark: an inner loop with a fixed behaviour.
struct PhaseSpec {
  /// Memory-bound (streaming) vs compute-bound body.
  bool Memory = false;
  /// Fraction of one outer iteration's cycles spent in this phase.
  double Share = 1.0;
  /// Instructions per inner-loop iteration.
  unsigned BodyInsts = 160;
  /// Memory phases: streaming footprint in 64-byte lines.
  unsigned ColdLines = 131072;
  /// Memory phases: fraction of memory ops that stream.
  double ColdFrac = 0.25;
  /// Compute phases: floating-point share.
  double FpShare = 0.4;
  /// Place the phase loop in a helper procedure called from main.
  bool InCallee = false;
};

/// A whole benchmark.
struct BenchSpec {
  std::string Name;
  /// Target isolated runtime on a fast core, simulated seconds.
  double TargetSeconds = 2.0;
  /// Outer-loop trip count; 1 means the phases run once, sequentially.
  unsigned Alternations = 1;
  std::vector<PhaseSpec> Phases;
  /// Instructions of *cold code*: procedures that are linked into the
  /// binary but never executed (utility paths, error handling). Real
  /// binaries are dominated by such code; it is what makes the paper's
  /// space-overhead percentages small, and it exercises the static
  /// pipeline on code with no dynamic profile.
  unsigned ColdCodeInsts = 20000;
};

/// Builds the IR program for \p Spec. \p FastFrequency (cycles/s of the
/// fast core type) calibrates trip counts against TargetSeconds.
Program buildBenchmark(const BenchSpec &Spec, double FastFrequency = 2.4e6);

/// The default 15-benchmark suite mirroring the paper's Table 1 set.
std::vector<BenchSpec> specSuite();

/// Convenience: builds every program of specSuite().
std::vector<Program> buildSuite(double FastFrequency = 2.4e6);

} // namespace pbt

#endif // PBT_WORKLOAD_BENCHMARKS_H

//===- workload/Runner.h - Experiment preparation & execution --*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue between the static pipeline and the simulator: prepares
/// instrumented benchmark images for a *technique* (baseline or a
/// phase-tuning variant), measures isolated runtimes (the t_i of the
/// paper's fairness metrics), and replays slot/queue workloads.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_WORKLOAD_RUNNER_H
#define PBT_WORKLOAD_RUNNER_H

#include "core/ErrorInjection.h"
#include "core/Instrument.h"
#include "core/Transitions.h"
#include "core/Tuner.h"
#include "scenario/Scenario.h"
#include "sim/Machine.h"
#include "support/ThreadPool.h"
#include "workload/Workload.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace pbt {

/// A named configuration under test.
struct TechniqueSpec {
  /// Baseline = uninstrumented programs under the oblivious scheduler
  /// (the paper's "standard Linux assignment").
  bool Baseline = false;
  /// Phase-marking configuration (ignored for the baseline).
  TransitionConfig Transition;
  /// Dynamic-analysis configuration (ignored for the baseline).
  TunerConfig Tuner;
  /// Use the proof-of-concept static k-means typing instead of the
  /// behavioural oracle (Sec. II-A3 ablation).
  bool UseStaticTyping = false;
  /// Clustering-error fraction injected after typing (Fig. 7).
  double TypingError = 0;
  /// Instrumentation cost profile.
  MarkCostModel Cost = MarkCostModel::tuned();

  /// Unambiguous display label: "Linux" (baseline) or the transition
  /// label with static-typing / typing-error markers appended
  /// ("Loop[45]", "Loop[45]+static", "BB[15,0]+err10%"), so sweep cells
  /// labeled by technique are self-describing. OS-level strategies are
  /// not techniques: the HASS-style comparator lives on the scheduler
  /// axis (SchedulerSpec::hassStatic()).
  std::string label() const;

  static TechniqueSpec baseline() {
    TechniqueSpec T;
    T.Baseline = true;
    return T;
  }

  static TechniqueSpec tuned(TransitionConfig Transition, TunerConfig Tuner) {
    TechniqueSpec T;
    T.Transition = Transition;
    T.Tuner = Tuner;
    return T;
  }

  bool operator==(const TechniqueSpec &Other) const {
    return samePreparation(Other) && Tuner == Other.Tuner;
  }
  bool operator!=(const TechniqueSpec &Other) const {
    return !(*this == Other);
  }

  /// True when \p Other prepares bit-identical suites: every field except
  /// Tuner, which only parameterizes the dynamic analysis at spawn time
  /// and never affects typing/marking/instrumentation/flat images. The
  /// suite cache keys on this relation, so sweeps that vary only the
  /// tuner reuse prepared images.
  bool samePreparation(const TechniqueSpec &Other) const {
    return Baseline == Other.Baseline && Transition == Other.Transition &&
           UseStaticTyping == Other.UseStaticTyping &&
           TypingError == Other.TypingError && Cost == Other.Cost;
  }

  /// Stable content hash mirroring samePreparation (Tuner excluded).
  uint64_t preparationHash() const;
};

/// Stable content hash over every TechniqueSpec field.
uint64_t hashValue(const TechniqueSpec &Tech);

/// Ready-to-run benchmark images for one technique on one machine.
/// Deliberately scheduler-free: the same prepared suite replays under
/// any SchedulerSpec (OS-level assignment, including the HASS-static
/// comparator's spawn pinning, lives entirely in the scheduler policy).
struct PreparedSuite {
  std::vector<std::shared_ptr<const InstrumentedProgram>> Images;
  std::vector<std::shared_ptr<const CostModel>> Costs;
  /// Fused flat execution images, one per benchmark, shared by every
  /// process spawned from this suite (built once at preparation time).
  std::vector<std::shared_ptr<const FlatImage>> Flats;
  std::vector<std::string> Names;
  TunerConfig Tuner;
};

/// Prepared artifacts of one program: the per-program slice of a
/// PreparedSuite. The unit of incremental preparation — exp/SuiteCache
/// stores and reloads these individually (`pbt-prog-v1` entries) and
/// assembles suites from them.
struct PreparedProgram {
  std::shared_ptr<const InstrumentedProgram> Image;
  std::shared_ptr<const CostModel> Cost;
  std::shared_ptr<const FlatImage> Flat;
};

/// Runs the static preparation pipeline (analysis/PassManager.h) over
/// \p Programs for \p Tech on \p Machine and returns one
/// PreparedProgram per input, in input order. \p TypingSeed drives
/// k-means and error injection. The per-program steps are independent,
/// so they fan out over \p Pool (the global thread pool when null) with
/// by-index writes: output is bit-identical to the serial loop
/// regardless of pool size.
std::vector<PreparedProgram>
preparePrograms(const std::vector<Program> &Programs,
                const MachineConfig &Machine, const TechniqueSpec &Tech,
                uint64_t TypingSeed = 42, ThreadPool *Pool = nullptr);

/// Types + marks + instruments every program for \p Tech on \p Machine
/// by running the pass-manager pipeline (see preparePrograms) and
/// assembling the results into a suite.
PreparedSuite prepareSuite(const std::vector<Program> &Programs,
                           const MachineConfig &Machine,
                           const TechniqueSpec &Tech,
                           uint64_t TypingSeed = 42,
                           ThreadPool *Pool = nullptr);

/// The pre-pass-manager monolithic pipeline, kept verbatim as the
/// reference implementation for the promotion contract: tests assert
/// prepareSuite output is bit-identical to this path. Not used by
/// production code.
PreparedSuite prepareSuiteMonolithic(const std::vector<Program> &Programs,
                                     const MachineConfig &Machine,
                                     const TechniqueSpec &Tech,
                                     uint64_t TypingSeed = 42,
                                     ThreadPool *Pool = nullptr);

/// Isolated runtime t_i of each program: uninstrumented, alone on the
/// machine, canonical branch seed. The per-program simulations are
/// independent, so they run concurrently on the global thread pool;
/// results are ordered (and bit-identical to) the serial loop.
std::vector<double> isolatedRuntimes(const std::vector<Program> &Programs,
                                     const MachineConfig &Machine,
                                     const SimConfig &Sim = SimConfig());

/// isolatedRuntimes over an already prepared baseline suite (callers
/// with a suite cache avoid re-running the static pipeline; exp::Lab
/// uses this so isolated-runtime measurement shares cached images).
std::vector<double> isolatedRuntimes(const PreparedSuite &BaselineSuite,
                                     const MachineConfig &Machine,
                                     const SimConfig &Sim = SimConfig());

/// One finished job of a workload run.
struct CompletedJob {
  uint32_t Bench = 0;
  int32_t Slot = -1;
  /// When the job arrived: for open scenarios the *scheduled* arrival
  /// instant of the stream — turnaround and slowdown include any
  /// door-queue (MaxInFlight) and quantum-alignment wait — and for
  /// batch runs the spawn time, as always.
  double Arrival = 0;
  /// When the job entered the machine (spawn). Equals Arrival for
  /// batch runs; >= Arrival for open scenarios (Admitted - Arrival is
  /// the admission delay).
  double Admitted = 0;
  double Completion = 0;
  /// Isolated runtime t_i of the benchmark (0 when not supplied).
  double Isolated = 0;
  ProcessStats Stats;
};

/// Outcome of a workload run.
struct RunResult {
  /// Simulated end of the run: the requested horizon for classic batch
  /// runs without a stop rule; the actual clock (quantized to whole
  /// timeslices) for open-scenario runs and for any run with a
  /// job-count stop rule, which may end early.
  double Horizon = 0;
  /// Instructions retired machine-wide within the horizon (throughput).
  uint64_t InstructionsRetired = 0;
  /// Completed jobs in canonical order. Stays EMPTY when the run was
  /// given a completion sink (see runWorkload's OnCompleted): jobs are
  /// delivered to the sink instead of buffered, which is what keeps a
  /// long-horizon run's memory O(1) in job count.
  std::vector<CompletedJob> Completed;
  /// Jobs completed within the horizon — Completed.size() for buffered
  /// runs, and still meaningful for sink-fed runs.
  size_t CompletedCount = 0;
  /// Aggregates over all processes (finished or not).
  uint64_t TotalSwitches = 0;
  uint64_t TotalMarks = 0;
  uint64_t CounterWaits = 0;
  double TotalOverheadCycles = 0;
  double TotalCycles = 0;
  /// Per-core busy fraction over the horizon (utilization diagnostic).
  std::vector<double> CoreBusy;
  /// Machine-wide scheduler telemetry summed over all processes,
  /// indexed by core type: what ran where (see SchedTelemetry).
  /// CyclesByType is a float accumulation, so it carries FastReplay's
  /// ulp-level drift — sweeps export it into artifacts only on request
  /// (SweepGrid::ExportTelemetry) and exact-engine grids.
  std::vector<uint64_t> InstsByType;
  std::vector<double> CyclesByType;
};

/// Replays \p W on \p MachineCfg for \p Horizon simulated seconds under
/// the OS policy named by \p Sched (the oblivious Linux-like baseline by
/// default — the exact policy every pre-scheduler-axis experiment ran)
/// and the traffic scenario \p Scenario (batch-at-zero by default — the
/// classic closed system, bit-identical to the pre-scenario path; open
/// scenarios ignore \p W's queues entirely and draw their own seeded
/// job stream over the suite). \p Isolated, when non-empty,
/// supplies per-benchmark t_i values copied into CompletedJob::Isolated
/// (the slowdown oracle of metrics/Latency). RunResult::Completed is
/// canonically ordered (completion time, then slot/arrival/bench as
/// tie-breaks) so downstream tables are stable however the run was
/// scheduled.
///
/// \p OnCompleted, when set, receives each completed job the moment it
/// finishes (deterministic machine exit order — NOT the canonical
/// sorted order) and RunResult::Completed stays empty: run memory is
/// O(1) in job count. Feed the jobs into streaming metric accumulators
/// (LatencyAccumulator / FairnessAccumulator, declared in metrics/ —
/// the sink is a plain callback precisely so this layer never depends
/// on the metrics layer above it). Buffered and sink-fed replays of
/// the same job are bit-identical simulations; only where the
/// CompletedJob goes differs.
/// \p Trace, when non-null, attaches a Plane-1 trace sink for the
/// replay (obs/Trace.h): the simulation is bit-identical with or
/// without it — tracing only observes.
using CompletionSink = std::function<void(const CompletedJob &)>;
RunResult runWorkload(const PreparedSuite &Suite, const Workload &W,
                      const MachineConfig &MachineCfg, const SimConfig &Sim,
                      double Horizon,
                      const std::vector<double> &Isolated = {},
                      const SchedulerSpec &Sched = SchedulerSpec(),
                      const ScenarioSpec &Scenario = ScenarioSpec(),
                      const CompletionSink &OnCompleted = nullptr,
                      obs::TraceSink *Trace = nullptr);

/// One workload replay request for the parallel runner. Pointees must
/// outlive the runWorkloads call.
struct WorkloadJob {
  const PreparedSuite *Suite = nullptr;
  const Workload *W = nullptr;
  const MachineConfig *Machine = nullptr;
  SimConfig Sim;
  double Horizon = 0;
  /// Optional per-benchmark t_i values (see runWorkload).
  const std::vector<double> *Isolated = nullptr;
  /// OS scheduling policy of this replay (oblivious by default).
  SchedulerSpec Sched;
  /// Traffic scenario of this replay (classic batch-at-zero by default).
  ScenarioSpec Scenario;
  /// Plane-1 trace identity of this replay: when non-empty AND tracing
  /// is enabled process-wide, the runner opens a per-unit sink named
  /// TRACE_<experiment>.g<TraceGroup>.<TraceUnit>.json. Unit ids come
  /// from the sweep plan, so file names — and contents — are
  /// independent of thread scheduling. Deliberately the last members:
  /// existing aggregate initializers default them to "off".
  std::string TraceUnit;
  uint64_t TraceGroup = 0;
};

/// Replays all jobs concurrently on the global thread pool. Each job is
/// a fully independent simulation (own machine, own process RNG streams
/// derived from the workload's deterministic seeds), so every result is
/// bit-identical to a serial runWorkload call, and results are returned
/// in input order regardless of completion order.
std::vector<RunResult> runWorkloads(const std::vector<WorkloadJob> &Jobs);

/// Runs benchmark \p Bench of \p Suite alone to completion; returns the
/// finished process's record (Table 1 / Fig. 5 per-benchmark data).
/// Always runs under the oblivious scheduler: the isolated runtime t_i
/// is *defined* against the paper's Linux baseline, so the fairness
/// metrics stay comparable across scheduler-axis sweeps.
CompletedJob runIsolated(const PreparedSuite &Suite, uint32_t Bench,
                         const MachineConfig &MachineCfg,
                         const SimConfig &Sim, uint64_t Seed = 1);

} // namespace pbt

#endif // PBT_WORKLOAD_RUNNER_H

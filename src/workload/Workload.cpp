//===- workload/Workload.cpp - Slot/queue workload model ------------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Workload.h"

#include "support/Rng.h"

using namespace pbt;

uint64_t Workload::jobSeed(uint32_t Slot, uint32_t Index) const {
  SplitMix64 SM((static_cast<uint64_t>(Slot) << 32) | Index);
  return SM.next() ^ 0xC0FFEE;
}

Workload Workload::random(uint32_t NumSlots, uint32_t JobsPerSlot,
                          uint32_t NumBenchmarks, uint64_t Seed) {
  Workload W;
  Rng Gen(Seed);
  W.Slots.resize(NumSlots);
  for (auto &Queue : W.Slots) {
    Queue.reserve(JobsPerSlot);
    for (uint32_t J = 0; J < JobsPerSlot; ++J)
      Queue.push_back(static_cast<uint32_t>(Gen.nextBelow(NumBenchmarks)));
  }
  return W;
}

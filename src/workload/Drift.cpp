//===- workload/Drift.cpp - Fast-replay drift characterization ------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Drift.h"

#include <cmath>

using namespace pbt;

namespace {

/// Relative |b - a| with a zero-safe denominator.
double relDrift(double A, double B) {
  if (A == B)
    return 0;
  double Denom = std::fabs(A);
  if (Denom == 0)
    Denom = std::fabs(B);
  return std::fabs(B - A) / Denom;
}

} // namespace

void DriftReport::merge(const RunResult &Exact, const RunResult &Fast) {
  ++Runs;
  if (Exact.Completed.size() != Fast.Completed.size()) {
    // Divergent completion counts: one engine finished jobs the other
    // did not within the horizon. Both identities are broken.
    IntegerStatsIdentical = false;
    CompletionOrderIdentical = false;
  }

  size_t Pairs = std::min(Exact.Completed.size(), Fast.Completed.size());
  for (size_t I = 0; I < Pairs; ++I) {
    const CompletedJob &E = Exact.Completed[I];
    const CompletedJob &F = Fast.Completed[I];
    ++Jobs;
    if (E.Bench != F.Bench || E.Slot != F.Slot || E.Arrival != F.Arrival)
      CompletionOrderIdentical = false;
    if (E.Stats.InstsRetired != F.Stats.InstsRetired ||
        E.Stats.BlocksExecuted != F.Stats.BlocksExecuted ||
        E.Stats.MarksFired != F.Stats.MarksFired ||
        E.Stats.CoreSwitches != F.Stats.CoreSwitches ||
        E.Stats.MonitorSessions != F.Stats.MonitorSessions ||
        E.Stats.CounterWaits != F.Stats.CounterWaits)
      IntegerStatsIdentical = false;
    double CycleDrift = relDrift(E.Stats.CyclesConsumed,
                                 F.Stats.CyclesConsumed);
    if (CycleDrift > MaxRelCycleDrift)
      MaxRelCycleDrift = CycleDrift;
    double CompletionDrift = relDrift(E.Completion - E.Arrival,
                                      F.Completion - F.Arrival);
    if (CompletionDrift > MaxRelCompletionDrift)
      MaxRelCompletionDrift = CompletionDrift;
  }

  if (Exact.InstructionsRetired != Fast.InstructionsRetired)
    IntegerStatsIdentical = false;
  double TotalDrift = relDrift(Exact.TotalCycles, Fast.TotalCycles);
  if (TotalDrift > MaxRelTotalCycleDrift)
    MaxRelTotalCycleDrift = TotalDrift;
}

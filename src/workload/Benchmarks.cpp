//===- workload/Benchmarks.cpp - SPEC-like synthetic suite ----------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "workload/Benchmarks.h"

#include "ir/IRBuilder.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace pbt;

namespace {

/// Rough fast-core CPI of a phase body, used only for trip-count
/// calibration (the simulator computes exact costs later).
double estimateCpi(const PhaseSpec &Phase, double FastFrequency) {
  if (!Phase.Memory)
    return 0.255 + 0.2 * Phase.FpShare;
  double MissPenalty = FastFrequency * 8.3e-6; // Matches MachineConfig.
  return 0.265 + 0.5 * Phase.ColdFrac * MissPenalty;
}

InstMix phaseMix(const PhaseSpec &Phase) {
  if (Phase.Memory)
    return InstMix::memory(Phase.BodyInsts, Phase.ColdLines, Phase.ColdFrac);
  return InstMix::compute(Phase.BodyInsts, Phase.FpShare);
}

/// Small filler mix matching a phase's flavour, for entry/join/latch
/// blocks, so single-flavour benchmarks stay uniformly typed.
InstMix fillerMix(const PhaseSpec &Flavor, unsigned Count = 12) {
  if (Flavor.Memory) {
    InstMix Mix = InstMix::memory(Count, Flavor.ColdLines, Flavor.ColdFrac);
    return Mix;
  }
  return InstMix::compute(Count, Flavor.FpShare);
}

/// Small "noise" loop sizes cycled through between phases; sized to
/// straddle the paper's minimum-size thresholds (10..60).
constexpr unsigned NoiseSizes[] = {12, 18, 26, 34, 42, 52};

} // namespace

Program pbt::buildBenchmark(const BenchSpec &Spec, double FastFrequency) {
  assert(!Spec.Phases.empty() && "benchmark needs at least one phase");
  uint64_t Seed = 0xB5;
  for (char C : Spec.Name)
    Seed = Seed * 131 + static_cast<unsigned char>(C);
  IRBuilder B(Spec.Name, Seed);

  uint32_t Main = B.createProc("main");
  const PhaseSpec &Flavor0 = Spec.Phases.front();

  uint32_t Entry = B.addBlock(Main);
  B.appendMix(Main, Entry, fillerMix(Flavor0, 20));

  // Open block awaiting its terminator; each construction step chains on.
  uint32_t Cur = Entry;
  uint32_t OuterHead = UINT32_MAX;
  if (Spec.Alternations > 1) {
    OuterHead = B.addBlock(Main);
    B.appendMix(Main, OuterHead, fillerMix(Flavor0, 8));
    B.setJump(Main, Entry, OuterHead);
    Cur = OuterHead;
  }

  double CyclesPerActivation = Spec.TargetSeconds * FastFrequency /
                               static_cast<double>(Spec.Alternations);

  unsigned NoiseCursor = Seed % 6;
  for (size_t PhaseIndex = 0; PhaseIndex < Spec.Phases.size();
       ++PhaseIndex) {
    const PhaseSpec &Phase = Spec.Phases[PhaseIndex];
    double Cpi = estimateCpi(Phase, FastFrequency);
    double Trips = Phase.Share * CyclesPerActivation /
                   (static_cast<double>(Phase.BodyInsts) * Cpi);
    uint32_t TripCount =
        static_cast<uint32_t>(std::max(1.0, std::round(Trips)));

    if (Phase.InCallee) {
      // Helper procedure holding the phase loop.
      uint32_t Callee =
          B.createProc(Spec.Name + "_f" + std::to_string(PhaseIndex));
      uint32_t CalleeEntry = B.addBlock(Callee);
      B.appendMix(Callee, CalleeEntry, fillerMix(Phase, 8));
      uint32_t Body = B.addBlock(Callee);
      B.appendMix(Callee, Body, phaseMix(Phase));
      uint32_t CalleeExit = B.addBlock(Callee);
      B.appendMix(Callee, CalleeExit, fillerMix(Phase, 6));
      B.setJump(Callee, CalleeEntry, Body);
      B.setLoop(Callee, Body, Body, CalleeExit, TripCount);
      B.setRet(Callee, CalleeExit);

      uint32_t CallBlock = B.addBlock(Main);
      B.appendMix(Main, CallBlock, fillerMix(Flavor0, 6));
      B.appendCall(Main, CallBlock, Callee);
      B.setJump(Main, Cur, CallBlock);
      uint32_t Join = B.addBlock(Main);
      B.appendMix(Main, Join, fillerMix(Flavor0, 6));
      B.setJump(Main, CallBlock, Join);
      Cur = Join;
    } else {
      uint32_t Body = B.addBlock(Main);
      B.appendMix(Main, Body, phaseMix(Phase));
      B.setJump(Main, Cur, Body);
      uint32_t Join = B.addBlock(Main);
      B.appendMix(Main, Join, fillerMix(Flavor0, 6));
      B.setLoop(Main, Body, Body, Join, TripCount);
      Cur = Join;
    }

    // A tiny opposite-typed noise loop after each phase but the last:
    // too small to be a section under larger minimum sizes, marked (and
    // costly) under small ones — this is what differentiates the
    // BB[10..20] / Int and Loop minimum-size variants.
    if (PhaseIndex + 1 < Spec.Phases.size()) {
      PhaseSpec Noise;
      Noise.Memory = !Phase.Memory;
      Noise.ColdFrac = 0.08;
      Noise.ColdLines = 131072;
      Noise.FpShare = 0.3;
      unsigned Size = NoiseSizes[NoiseCursor++ % 6];
      uint32_t NoiseBody = B.addBlock(Main);
      B.appendMix(Main, NoiseBody, fillerMix(Noise, Size));
      B.setJump(Main, Cur, NoiseBody);
      uint32_t Join = B.addBlock(Main);
      B.appendMix(Main, Join, fillerMix(Flavor0, 6));
      B.setLoop(Main, NoiseBody, NoiseBody, Join, 3 + NoiseCursor % 3);
      Cur = Join;
    }
  }

  if (Spec.Alternations > 1) {
    // Conditional diamond before the latch (branch-outcome coverage);
    // both arms share the benchmark's base flavour.
    uint32_t Left = B.addBlock(Main);
    uint32_t Right = B.addBlock(Main);
    uint32_t Latch = B.addBlock(Main);
    B.appendMix(Main, Left, fillerMix(Flavor0, 10));
    B.appendMix(Main, Right, fillerMix(Flavor0, 14));
    B.appendMix(Main, Latch, fillerMix(Flavor0, 6));
    B.setCond(Main, Cur, Left, Right, 0.5);
    B.setJump(Main, Left, Latch);
    B.setJump(Main, Right, Latch);
    uint32_t Exit = B.addBlock(Main);
    B.appendMix(Main, Exit, fillerMix(Flavor0, 6));
    B.setLoop(Main, Latch, OuterHead, Exit, Spec.Alternations);
    Cur = Exit;
  }

  B.setRet(Main, Cur);

  // Cold code: never-executed procedures padding the binary like the
  // utility/error paths of a real executable. About a third are
  // mixed-flavour (they contain phase transitions the static marker will
  // instrument, contributing space overhead but never dynamic cost).
  Rng ColdGen(Seed ^ 0xC01DC0DEULL);
  // Straight-line block sizes straddle the BB minimum sizes (10/15/20);
  // loop-block sizes straddle the section minimum sizes (30/45/60), so
  // every variant of the paper's grid filters a different subset.
  constexpr unsigned StraightSizes[] = {12, 18, 26, 60, 140, 220};
  constexpr unsigned LoopSizes[] = {12, 24, 38, 52, 68};
  unsigned Remaining = Spec.ColdCodeInsts;
  unsigned ColdIndex = 0;
  while (Remaining > 300) {
    uint32_t Proc =
        B.createProc(Spec.Name + "_cold" + std::to_string(ColdIndex));
    bool Mixed = ColdIndex % 8 == 4;
    bool MemFlavor = ColdIndex % 2 == 1;
    unsigned NumBlocks = 3 + static_cast<unsigned>(ColdGen.nextBelow(4));
    unsigned Emitted = 0;
    uint32_t Prev = UINT32_MAX;
    for (unsigned BlockIndex = 0; BlockIndex < NumBlocks; ++BlockIndex) {
      uint32_t Block = B.addBlock(Proc);
      bool WillLoop = Prev != UINT32_MAX && BlockIndex % 2 == 1;
      unsigned Size = WillLoop ? LoopSizes[ColdGen.nextBelow(5)]
                               : StraightSizes[ColdGen.nextBelow(6)];
      bool ThisMem = Mixed ? (BlockIndex % 2 == 1) : MemFlavor;
      InstMix Mix = ThisMem ? InstMix::memory(Size, 131072, 0.08)
                            : InstMix::compute(Size, 0.35);
      B.appendMix(Proc, Block, Mix);
      Emitted += Size;
      if (Prev != UINT32_MAX) {
        // Chain; make every other block a small self-loop so the loop
        // and interval analyses see structure in cold code too.
        if (BlockIndex % 2 == 1) {
          uint32_t Join = B.addBlock(Proc);
          B.appendMix(Proc, Join, InstMix::compute(4, 0.0));
          B.setJump(Proc, Prev, Block);
          B.setLoop(Proc, Block, Block, Join, 2);
          Prev = Join;
          Emitted += 4;
          continue;
        }
        B.setJump(Proc, Prev, Block);
      }
      Prev = Block;
    }
    B.setRet(Proc, Prev);
    Remaining = Remaining > Emitted ? Remaining - Emitted : 0;
    ++ColdIndex;
  }
  return B.take();
}

std::vector<BenchSpec> pbt::specSuite() {
  auto C = [](double Share, double Fp = 0.4) {
    PhaseSpec P;
    P.Memory = false;
    P.Share = Share;
    P.FpShare = Fp;
    return P;
  };
  auto M = [](double Share, double ColdFrac = 0.05,
              unsigned ColdLines = 131072) {
    PhaseSpec P;
    P.Memory = true;
    P.Share = Share;
    P.ColdFrac = ColdFrac;
    P.ColdLines = ColdLines;
    return P;
  };
  auto InCallee = [](PhaseSpec P) {
    P.InCallee = true;
    return P;
  };

  // Names, target runtimes (log-compressed from the paper's Table 1
  // isolated runtimes), alternation counts (calibrated to Table 1 switch
  // counts: switches ~ 2 * alternations), and phase structures. Cold
  // fractions keep L2 miss-per-instruction rates in the few-percent range
  // of real SPEC codes, which places the slow-vs-fast IPC gap of
  // memory-bound phases near 0.22-0.28 (above the paper's delta of
  // 0.15-0.2) while compute phases sit near 0.
  // Alternation counts are the paper's Table 1 switch counts divided by
  // ~100 (the simulation's time-scale factor), preserving the per-
  // benchmark ordering while keeping every phase long enough to amortize
  // the 1000-cycle switch, as on the real machine.
  // Phase shares are chosen so the suite's aggregate memory-phase time
  // (~0.4 of total) matches the slow cores' capacity share of the quad
  // machine (2x1.6 / (2x2.4 + 2x1.6) = 0.4): phase-based tuning can then
  // keep both core types saturated, as in the paper's workloads.
  std::vector<BenchSpec> Suite;
  Suite.push_back({"164.gzip", 1.5, 2,
                   {C(0.4), M(0.3, 0.10, 70000), C(0.3)}, 13000});
  Suite.push_back({"179.art", 2.2, 2,
                   {C(0.25), M(0.5, 0.12), C(0.25)}, 15000});
  Suite.push_back({"175.vpr", 2.2, 2,
                   {C(0.3), M(0.2, 0.10, 40000), C(0.3), M(0.2, 0.08)},
                   16000});
  Suite.push_back({"473.astar", 2.2, 1, {C(1.0)}, 14000});
  Suite.push_back({"181.mcf", 2.3, 2,
                   {C(0.2), M(0.3, 0.12), C(0.2), M(0.3, 0.10)}, 15000});
  Suite.push_back({"183.equake", 2.3, 76,
                   {C(0.5), InCallee(M(0.5, 0.10, 65536))}, 15000});
  Suite.push_back({"188.ammp", 2.4, 2,
                   {C(0.5), M(0.1, 0.10), C(0.4)}, 17000});
  Suite.push_back({"172.mgrid", 3.7, 20,
                   {C(0.55), M(0.45, 0.09, 100000)}, 16000});
  Suite.push_back({"401.bzip2", 5.2, 48,
                   {InCallee(C(0.55)), M(0.45, 0.10, 90000)}, 18000});
  Suite.push_back({"429.mcf", 7.7, 2,
                   {C(0.15), M(0.25, 0.3, 250000), C(0.15), M(0.25, 0.12),
                    C(0.05), M(0.15, 0.10, 80000)},
                   20000});
  Suite.push_back({"470.lbm", 8.6, 8,
                   {M(0.45, 0.12, 150000), C(0.55)}, 17000});
  Suite.push_back({"459.GemsFDTD", 12.0, 1,
                   {InCallee(M(1.0, 0.10))}, 22000});
  Suite.push_back({"173.applu", 14.2, 12,
                   {C(0.55), InCallee(M(0.45, 0.09, 120000))}, 21000});
  Suite.push_back({"171.swim", 18.0, 32,
                   {M(0.35, 0.10, 180000), C(0.65)}, 19000});
  Suite.push_back({"410.bwaves", 40.0, 12,
                   {M(0.3, 0.09, 260000), C(0.7)}, 26000});
  return Suite;
}

std::vector<Program> pbt::buildSuite(double FastFrequency) {
  std::vector<Program> Programs;
  for (const BenchSpec &Spec : specSuite())
    Programs.push_back(buildBenchmark(Spec, FastFrequency));
  return Programs;
}

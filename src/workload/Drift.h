//===- workload/Drift.h - Fast-replay drift characterization ---*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast-replay engine's validation checker: a DriftReport compares
/// an exact-engine run against its fast-replay twin job by job and
/// accumulates exactly what the promotion contract promises —
///
///   - integer statistics (instructions, blocks, marks, switches,
///     monitor sessions, counter waits) and completion ORDER must be
///     identical, bit for bit;
///   - cycle totals and completion TIMES may drift, but only within
///     the documented reassociation bound (relative drift of a few
///     ulps per fused chain charge; see docs/ARCHITECTURE.md
///     "Fast-replay engine").
///
/// The model is the oracle-validated promotion pattern of the related
/// static-analysis repos: a fast path is promotable only once a
/// checker proves it equivalent-within-bound to the exact one over the
/// corpus. bench/micro_interpreter emits a report into its artifact;
/// tests/fastreplay_test.cpp asserts the bound over randomized
/// programs x machines x seeds.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_WORKLOAD_DRIFT_H
#define PBT_WORKLOAD_DRIFT_H

#include "workload/Runner.h"

#include <cstddef>

namespace pbt {

/// Accumulated comparison of exact-engine runs vs their fast-replay
/// twins. Zero-initialized state means "no divergence observed".
struct DriftReport {
  /// Run pairs merged so far.
  size_t Runs = 0;
  /// Completed-job pairs compared so far.
  size_t Jobs = 0;
  /// Every integer statistic of every compared job pair was identical
  /// (and both runs completed the same number of jobs).
  bool IntegerStatsIdentical = true;
  /// Both runs completed the same (bench, slot, arrival) sequence in
  /// the same canonical order.
  bool CompletionOrderIdentical = true;
  /// Largest relative |fast - exact| / exact over per-job
  /// CyclesConsumed (0 when every pair matched bit for bit).
  double MaxRelCycleDrift = 0;
  /// Largest relative drift over per-job completion times (measured on
  /// turnaround, Completion - Arrival, so batch spawn offsets cancel).
  double MaxRelCompletionDrift = 0;
  /// Largest relative drift over the runs' aggregate TotalCycles.
  double MaxRelTotalCycleDrift = 0;

  /// Folds one (exact, fast) run pair into the report. Runs must come
  /// from identical workload replays (same suite, workload, machine,
  /// seeds) differing only in SimConfig::Engine; both must have
  /// buffered completions (no sink).
  void merge(const RunResult &Exact, const RunResult &Fast);

  /// True when the report upholds the promotion contract: identical
  /// integer stats and completion order, and every relative drift
  /// within \p MaxRelDrift.
  bool withinBound(double MaxRelDrift) const {
    return IntegerStatsIdentical && CompletionOrderIdentical &&
           MaxRelCycleDrift <= MaxRelDrift &&
           MaxRelCompletionDrift <= MaxRelDrift &&
           MaxRelTotalCycleDrift <= MaxRelDrift;
  }
};

} // namespace pbt

#endif // PBT_WORKLOAD_DRIFT_H

//===- workload/Workload.h - Slot/queue workload model ----------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's workload methodology (Sec. IV-A2): a workload has a fixed
/// number of *slots*, each with its own job queue of randomly selected
/// benchmarks. All slot queues start one job at time zero; whenever a
/// job completes, the next job in its slot's queue starts immediately, so
/// the number of running jobs is constant. Comparing two techniques uses
/// the *same* queues (and the same per-job branch seeds).
///
//===----------------------------------------------------------------------===//

#ifndef PBT_WORKLOAD_WORKLOAD_H
#define PBT_WORKLOAD_WORKLOAD_H

#include <cstdint>
#include <vector>

namespace pbt {

/// A fixed-size workload: Slots[s] is the job queue (benchmark indices)
/// of slot s.
struct Workload {
  std::vector<std::vector<uint32_t>> Slots;

  uint32_t numSlots() const { return static_cast<uint32_t>(Slots.size()); }

  /// Deterministic per-job branch seed: identical across techniques so
  /// both schedulers replay identical dynamic traces.
  uint64_t jobSeed(uint32_t Slot, uint32_t Index) const;

  /// Builds a random workload of \p NumSlots slots, each queueing
  /// \p JobsPerSlot uniformly drawn benchmarks out of \p NumBenchmarks.
  static Workload random(uint32_t NumSlots, uint32_t JobsPerSlot,
                         uint32_t NumBenchmarks, uint64_t Seed);
};

} // namespace pbt

#endif // PBT_WORKLOAD_WORKLOAD_H

//===- scenario/Scenario.cpp - Traffic-scenario specifications ------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "scenario/Scenario.h"

#include "support/Hashing.h"
#include "support/Rng.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

using namespace pbt;

std::string ScenarioSpec::label() const {
  char Buf[64];
  std::string Out;
  switch (Arrival) {
  case ArrivalProcess::Batch:
    Out = "batch";
    break;
  case ArrivalProcess::Periodic:
    std::snprintf(Buf, sizeof(Buf), "periodic[%g", Interval);
    Out = Buf;
    break;
  case ArrivalProcess::Poisson:
    std::snprintf(Buf, sizeof(Buf), "poisson[%g", Rate);
    Out = Buf;
    break;
  }
  if (!isBatch()) {
    if (ArrivalSeed != DefaultArrivalSeed) {
      std::snprintf(Buf, sizeof(Buf), ",s%llu",
                    static_cast<unsigned long long>(ArrivalSeed));
      Out += Buf;
    }
    Out += "]";
  }
  if (MaxJobs > 0) {
    std::snprintf(Buf, sizeof(Buf), "+n%u", MaxJobs);
    Out += Buf;
  }
  if (!isBatch() && MaxInFlight > 0) {
    std::snprintf(Buf, sizeof(Buf), "+mpl%u", MaxInFlight);
    Out += Buf;
  }
  return Out;
}

bool ScenarioSpec::operator==(const ScenarioSpec &Other) const {
  if (Arrival != Other.Arrival || MaxJobs != Other.MaxJobs)
    return false;
  if (isBatch())
    return true; // Open-system knobs don't affect a batch replay.
  if (ArrivalSeed != Other.ArrivalSeed || MaxInFlight != Other.MaxInFlight)
    return false;
  return Arrival == ArrivalProcess::Periodic ? Interval == Other.Interval
                                             : Rate == Other.Rate;
}

uint64_t pbt::hashValue(const ScenarioSpec &Spec) {
  uint64_t H = hashCombine(0x5CE7A210, static_cast<uint64_t>(Spec.Arrival));
  H = hashCombine(H, Spec.MaxJobs);
  if (Spec.isBatch())
    return H;
  H = hashCombine(H, Spec.ArrivalSeed);
  H = hashCombine(H, Spec.MaxInFlight);
  return hashCombine(H, hashDouble(Spec.Arrival == ArrivalProcess::Periodic
                                       ? Spec.Interval
                                       : Spec.Rate));
}

namespace {

/// Deterministic per-arrival branch seed, decorrelated from the mix and
/// interarrival streams (the Workload::jobSeed pattern).
uint64_t arrivalJobSeed(uint64_t ArrivalSeed, uint64_t Index) {
  SplitMix64 SM(ArrivalSeed ^ (Index * 0xD1B54A32D192ED03ULL));
  return SM.next() ^ 0x7AFF1C;
}

} // namespace

std::vector<ScenarioArrival>
pbt::scenarioArrivals(const ScenarioSpec &Spec, uint32_t NumBenchmarks,
                      double Horizon) {
  if (Spec.isBatch())
    return {};
  if (NumBenchmarks == 0)
    throw std::invalid_argument(
        "scenarioArrivals needs at least one benchmark in the mix");
  if (Spec.Arrival == ArrivalProcess::Periodic && !(Spec.Interval > 0))
    throw std::invalid_argument(
        "ScenarioSpec::Interval must be positive (simulated seconds)");
  if (Spec.Arrival == ArrivalProcess::Poisson && !(Spec.Rate > 0))
    throw std::invalid_argument(
        "ScenarioSpec::Rate must be positive (arrivals per second)");

  // Independent streams for gaps and mix, so periodic and Poisson
  // scenarios with equal seeds draw the identical benchmark sequence.
  Rng Root(Spec.ArrivalSeed);
  Rng Gaps = Root.split(0x6A95);
  Rng Mix = Root.split(0xB13D);

  std::vector<ScenarioArrival> Out;
  double Time = 0;
  for (uint64_t Index = 0;; ++Index) {
    if (Spec.Arrival == ArrivalProcess::Periodic) {
      // Exact multiples: no floating accumulation drift over long runs.
      Time = Spec.Interval * static_cast<double>(Index);
    } else {
      // Exponential gap with mean 1/Rate; nextDouble() is in [0, 1) so
      // 1-u is in (0, 1] and the log is finite.
      Time += -std::log(1.0 - Gaps.nextDouble()) / Spec.Rate;
    }
    // Half-open window [0, Horizon): an arrival at the horizon itself
    // could never spawn (the run ends once the clock reaches it), so
    // counting it would leave a phantom job no stop rule can satisfy.
    if (Time >= Horizon)
      break;
    if (Spec.MaxJobs > 0 && Out.size() >= Spec.MaxJobs)
      break;
    ScenarioArrival A;
    A.Time = Time;
    A.Bench = static_cast<uint32_t>(Mix.nextBelow(NumBenchmarks));
    A.Seed = arrivalJobSeed(Spec.ArrivalSeed, Index);
    Out.push_back(A);
  }
  return Out;
}

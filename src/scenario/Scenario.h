//===- scenario/Scenario.h - Traffic-scenario specifications ---*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The traffic-scenario layer: declarative descriptions of *how jobs
/// arrive* at the simulated machine. The paper evaluates fixed
/// multiprogrammed mixes — every job present at cycle zero, a constant
/// number running until the horizon (a closed system). A ScenarioSpec
/// generalizes that into an open-system server model: jobs arrive over
/// simulated time according to a named arrival process, drawn from a
/// seeded job mix over the suite's benchmarks, until a stop rule is
/// met. The batch-at-zero scenario is the exact classic behaviour
/// (proven bit-identical in tests/scenario_test.cpp), so the scenario
/// is a pure replay-time axis like SchedulerSpec: it never affects
/// suite preparation and is excluded from every cache key.
///
/// **Determinism rules.** All randomness (interarrival gaps, benchmark
/// mix, per-job branch seeds) flows through seeded support/Rng streams
/// derived from ScenarioSpec::ArrivalSeed; arrival schedules are
/// materialized up front, sorted by time, and injected into the
/// Machine at quantum granularity. Replays of the same spec are
/// bit-identical across reruns and thread counts — no clocks, no
/// pointer order.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_SCENARIO_SCENARIO_H
#define PBT_SCENARIO_SCENARIO_H

#include <cstdint>
#include <string>
#include <vector>

namespace pbt {

/// How jobs arrive at the machine.
enum class ArrivalProcess : uint8_t {
  /// The paper's closed slot/queue system: every slot starts one job at
  /// time zero and refills on completion (constant multiprogramming).
  Batch,
  /// Open system, fixed interarrival gap: arrivals at 0, I, 2I, ...
  Periodic,
  /// Open system, seeded pseudo-Poisson stream: exponential
  /// interarrival gaps with mean 1/Rate, drawn from support/Rng.
  Poisson,
};

/// One materialized arrival of an open-system schedule.
struct ScenarioArrival {
  /// Arrival time in simulated seconds (non-decreasing within a
  /// schedule; spawns fire at the first quantum boundary >= Time).
  double Time = 0;
  /// Benchmark index into the prepared suite.
  uint32_t Bench = 0;
  /// Branch seed of the spawned process (deterministic per arrival
  /// index, like Workload::jobSeed).
  uint64_t Seed = 0;
};

/// A named, declarative traffic scenario: the arrival-process analog of
/// SchedulerSpec, and a sweep axis of SweepGrid. Deliberately
/// orthogonal to suite preparation — scenarios only steer *when* the
/// dynamic replay spawns jobs, so TechniqueSpec::samePreparation and
/// every cache key exclude it and a scenario-only sweep replays cached
/// images without re-running the static pipeline.
struct ScenarioSpec {
  /// The canonical arrival seed used when an experiment does not vary
  /// the traffic randomness.
  static constexpr uint64_t DefaultArrivalSeed = 4242;

  ArrivalProcess Arrival = ArrivalProcess::Batch;
  /// Periodic: seconds between arrivals (must be positive).
  double Interval = 0;
  /// Poisson: mean arrivals per simulated second (must be positive).
  double Rate = 0;
  /// Seeds the interarrival and job-mix streams of open scenarios
  /// (ignored by batch — the Workload's own queues and seeds apply).
  uint64_t ArrivalSeed = DefaultArrivalSeed;
  /// Stop rule: end the run once this many jobs completed (0 = run to
  /// the horizon). Applies to every arrival process; open schedules
  /// also generate at most this many arrivals.
  uint32_t MaxJobs = 0;
  /// Closed-loop multiprogramming cap for open scenarios: arrivals
  /// beyond this many in-flight jobs queue at the door and are
  /// admitted as completions free capacity (0 = admit immediately).
  /// Ignored by batch, whose slot count fixes the multiprogramming.
  uint32_t MaxInFlight = 0;

  bool isBatch() const { return Arrival == ArrivalProcess::Batch; }

  /// The classic closed system (the default spec): bit-identical to
  /// the pre-scenario runWorkload path.
  static ScenarioSpec batch() { return ScenarioSpec(); }

  static ScenarioSpec periodic(double Interval,
                               uint64_t Seed = DefaultArrivalSeed) {
    ScenarioSpec S;
    S.Arrival = ArrivalProcess::Periodic;
    S.Interval = Interval;
    S.ArrivalSeed = Seed;
    return S;
  }

  static ScenarioSpec poisson(double Rate,
                              uint64_t Seed = DefaultArrivalSeed) {
    ScenarioSpec S;
    S.Arrival = ArrivalProcess::Poisson;
    S.Rate = Rate;
    S.ArrivalSeed = Seed;
    return S;
  }

  /// Fluent stop-rule / admission-cap setters, so grids read
  /// `ScenarioSpec::poisson(4).withMaxInFlight(8)`.
  ScenarioSpec withMaxJobs(uint32_t N) const {
    ScenarioSpec S = *this;
    S.MaxJobs = N;
    return S;
  }
  ScenarioSpec withMaxInFlight(uint32_t N) const {
    ScenarioSpec S = *this;
    S.MaxInFlight = N;
    return S;
  }

  /// Display label: "batch", "periodic[0.25]", "poisson[4]", with a
  /// non-default seed marked ",s<seed>" inside the brackets and the
  /// optional "+n<jobs>" / "+mpl<cap>" suffixes — so sweep cells
  /// labeled by scenario are self-describing.
  std::string label() const;

  /// Equality over the fields that affect a replay: batch ignores every
  /// open-system knob except MaxJobs; periodic/poisson compare their
  /// own parameter plus seed and admission cap.
  bool operator==(const ScenarioSpec &Other) const;
  bool operator!=(const ScenarioSpec &Other) const {
    return !(*this == Other);
  }
};

/// Stable content hash mirroring ScenarioSpec::operator==.
uint64_t hashValue(const ScenarioSpec &Spec);

/// Materializes the arrival schedule of an open scenario: every arrival
/// with Time < \p Horizon (a half-open window — at most MaxJobs of
/// them), times non-decreasing, benchmarks drawn uniformly from
/// [0, \p NumBenchmarks), seeds per arrival index. Returns an empty
/// schedule for batch (the Workload's slot queues arrive instead).
/// Throws std::invalid_argument on a non-positive Interval/Rate or a
/// zero NumBenchmarks.
std::vector<ScenarioArrival> scenarioArrivals(const ScenarioSpec &Spec,
                                              uint32_t NumBenchmarks,
                                              double Horizon);

} // namespace pbt

#endif // PBT_SCENARIO_SCENARIO_H

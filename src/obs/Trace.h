//===- obs/Trace.h - Deterministic simulated-time event tracing -*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plane 1 of the observability subsystem: a per-replay-unit event
/// trace of everything the simulator decided — spawns, per-quantum
/// execution windows, migrations, balance passes, policy reassignments
/// with their IPC evidence, scheduleAt injections, scenario
/// arrivals/admissions/completions — timestamped exclusively in
/// *simulated cycles* on the machine's reference core type. No value in
/// a trace may derive from wall clocks, cycle accumulators that differ
/// between engines (FastReplay drifts by ulps), or thread scheduling,
/// so TRACE_*.json files are byte-identical across
/// standalone/driver/cold/warm runs, thread counts, and all three
/// execution engines — CI-asserted like every other artifact.
///
/// The output is Chrome trace-event JSON ({"traceEvents": [...]}),
/// loadable in Perfetto / chrome://tracing: one track per core (pid 1),
/// one per process (pid 2), one scenario track (pid 3), plus a
/// "machine" track for balance/injection instants. The writer streams
/// through a small fixed buffer, so open-system runs trace in bounded
/// memory (peakBufferBytes() proves it in tests).
///
/// Zero-cost-when-off: tracing hangs off a single `TraceSink *` that is
/// nullptr unless a sink was opened; disabled hot paths pay one
/// pointer test per quantum, nothing per block. There are no virtual
/// calls — TraceSink is concrete and final.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_OBS_TRACE_H
#define PBT_OBS_TRACE_H

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

namespace pbt {
namespace obs {

/// \name Process-global trace configuration
/// Set once by the driver (--trace=<dir>) or standalone harness
/// (PBT_TRACE=<dir>); consulted at sink-open time only.
/// @{

/// True when a trace directory is configured.
bool traceEnabled();
/// Enables tracing into \p Dir ("" disables). Creates \p Dir lazily at
/// first sink open.
void setTraceDir(const std::string &Dir);
/// The configured trace directory ("" when disabled).
std::string traceDir();
/// Names the current experiment (trace files are
/// TRACE_<experiment>.g<group>.<unit>.json) and resets the group
/// counter; called by the harness constructor.
void setTraceExperiment(const std::string &Name);
/// Reserves the next trace group id for one sweep/run of the current
/// experiment. Group ids are allocated in deterministic program order
/// (one per traced runSweep call), never concurrently.
uint64_t beginTraceGroup();

/// @}

/// Streams one replay unit's events as Chrome trace-event JSON.
/// Timestamps ("ts"/"dur") are simulated cycles on the reference core
/// type; callers convert simulated seconds via cycles(). Not
/// thread-safe: each sink belongs to exactly one replay unit, which is
/// simulated by exactly one thread.
class TraceSink final {
public:
  /// Opens the sink for \p UnitId within trace group \p Group, or
  /// returns nullptr when tracing is disabled (or the file cannot be
  /// created — tracing is best-effort and never fails a run).
  static std::unique_ptr<TraceSink> openForUnit(const std::string &UnitId,
                                                uint64_t Group);
  /// Opens a sink at an explicit path (tests).
  static std::unique_ptr<TraceSink> openAt(const std::string &Path);

  ~TraceSink();
  TraceSink(const TraceSink &) = delete;
  TraceSink &operator=(const TraceSink &) = delete;

  /// Sets the simulated-cycles-per-simulated-second timebase (the
  /// reference core type's Frequency).
  void setCyclesPerSecond(double Cps) { this->Cps = Cps; }
  /// Converts simulated seconds to trace cycles.
  double cycles(double SimSeconds) const { return SimSeconds * Cps; }

  /// \name Track metadata
  /// @{
  void coreTrack(uint32_t Core, const std::string &Label);
  void machineTrack(uint32_t Tid);
  void processTrack(uint32_t Pid, const std::string &Label);
  /// @}

  /// \name Simulated-time events (all ts in cycles)
  /// @{
  /// Process \p Pid spawned into slot \p Slot (-1 = slotless, e.g.
  /// isolated runs), initially queued on \p Core.
  void spawn(double Ts, uint32_t Pid, uint32_t Core, int32_t Slot);
  /// Process finished; \p Insts = instructions retired in total.
  void exitProcess(double Ts, uint32_t Pid, uint64_t Insts);
  /// One execution window: \p Pid ran on \p Core for \p Dur cycles of
  /// the quantum starting at \p Ts, retiring \p Insts instructions.
  /// Widths are instruction-proportional shares of the quantum (cycle-
  /// exact widths would break cross-engine byte-identity).
  void window(double Ts, double Dur, uint32_t Core, uint32_t Pid,
              uint64_t Insts);
  /// Mark-triggered migration of \p Pid off \p From, re-placed on \p To.
  void migrate(double Ts, uint32_t Pid, uint32_t From, uint32_t To);
  /// Scheduler policy moved queued \p Pid from \p From to \p To; \p Ipc
  /// is the sampled-IPC evidence (0 when the policy keeps none),
  /// rounded to 4 significant digits so ulp-level engine drift cannot
  /// reach the bytes.
  void reassign(double Ts, uint32_t Pid, uint32_t From, uint32_t To,
                double Ipc);
  /// Periodic balance pass ran.
  void balance(double Ts);
  /// A scheduleAt() injection fired.
  void inject(double Ts);
  /// Scenario arrival of benchmark \p Bench became due.
  void arrival(double Ts, uint32_t Bench);
  /// Arrival admitted: spawned as \p Pid running benchmark \p Bench.
  void admit(double Ts, uint32_t Pid, uint32_t Bench);
  /// Job completed (scenario-level; pairs with RunResult::Completed).
  void complete(double Ts, uint32_t Pid, uint32_t Bench);
  /// End of the replay: horizon reached or stop rule hit.
  void runEnd(double Ts, uint64_t Completed, uint64_t Spawned);
  /// @}

  /// Largest number of buffered-but-unwritten bytes ever held; the
  /// bounded-memory proof asserts this stays under bufferCapacity().
  size_t peakBufferBytes() const { return Peak; }
  /// The flush threshold: the buffer never grows past this plus one
  /// event.
  static size_t bufferCapacity() { return 48 * 1024; }
  /// Path this sink writes to.
  const std::string &path() const { return Path; }

private:
  TraceSink(std::FILE *Out, std::string Path);

  void appendf(const char *Fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
      __attribute__((format(printf, 2, 3)))
#endif
      ;
  void beginEvent();
  void endEvent();
  void flush();

  std::FILE *Out = nullptr;
  std::string Path;
  std::string Buf;
  bool First = true;
  size_t Peak = 0;
  double Cps = 1.0;
  uint32_t MachineTid = 0;
};

} // namespace obs
} // namespace pbt

#endif // PBT_OBS_TRACE_H

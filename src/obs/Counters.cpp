//===- obs/Counters.cpp - Unified fabric counter registry -----------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Counters.h"

namespace pbt {
namespace obs {

CounterRegistry &CounterRegistry::global() {
  static CounterRegistry R;
  return R;
}

std::atomic<uint64_t> &CounterRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> G(Mu);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot.reset(new std::atomic<uint64_t>(0));
  return *Slot;
}

uint64_t CounterRegistry::value(const std::string &Name) const {
  std::lock_guard<std::mutex> G(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end()
             ? 0
             : It->second->load(std::memory_order_relaxed);
}

void CounterRegistry::addMetric(const std::string &Name, double Delta) {
  std::lock_guard<std::mutex> G(Mu);
  Metrics[Name] += Delta;
}

void CounterRegistry::setMetric(const std::string &Name, double Value) {
  std::lock_guard<std::mutex> G(Mu);
  Metrics[Name] = Value;
}

double CounterRegistry::metric(const std::string &Name) const {
  std::lock_guard<std::mutex> G(Mu);
  auto It = Metrics.find(Name);
  return It == Metrics.end() ? 0.0 : It->second;
}

Json CounterRegistry::snapshotJson() const {
  std::lock_guard<std::mutex> G(Mu);
  Json Snap;
  Json C = Json::object();
  for (const auto &KV : Counters)
    C[KV.first] = KV.second->load(std::memory_order_relaxed);
  Json M = Json::object();
  for (const auto &KV : Metrics)
    M[KV.first] = KV.second;
  Snap["counters"] = std::move(C);
  Snap["metrics"] = std::move(M);
  return Snap;
}

std::vector<std::pair<std::string, uint64_t>>
CounterRegistry::counterValues() const {
  std::lock_guard<std::mutex> G(Mu);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(Counters.size());
  for (const auto &KV : Counters)
    Out.emplace_back(KV.first,
                     KV.second->load(std::memory_order_relaxed));
  return Out;
}

std::vector<std::pair<std::string, double>>
CounterRegistry::metricValues() const {
  std::lock_guard<std::mutex> G(Mu);
  return std::vector<std::pair<std::string, double>>(Metrics.begin(),
                                                     Metrics.end());
}

void CounterRegistry::reset() {
  std::lock_guard<std::mutex> G(Mu);
  Counters.clear();
  Metrics.clear();
}

} // namespace obs
} // namespace pbt

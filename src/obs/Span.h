//===- obs/Span.h - RAII wall-clock spans into the registry -----*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plane-2 self-profiling spans: a Span brackets a fabric operation and,
/// on destruction, bumps `<name>.calls` and accumulates elapsed wall
/// time into the `<name>.seconds` metric of the global CounterRegistry.
/// Time comes from the vetted obs/Clock seam, so spans are legal
/// anywhere in src/ without touching the determinism allowlist — but
/// span output may only surface in PROFILE_driver.json / --report,
/// never in byte-compared artifacts.
///
///   { obs::Span S("cache_store.load"); ... }  // one timed call
///
//===----------------------------------------------------------------------===//

#ifndef PBT_OBS_SPAN_H
#define PBT_OBS_SPAN_H

#include "obs/Clock.h"
#include "obs/Counters.h"

#include <string>

namespace pbt {
namespace obs {

/// Times a scope and folds it into the global registry on destruction.
class Span {
public:
  explicit Span(std::string Name)
      : Name(std::move(Name)), Start(monotonicSeconds()) {}
  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;
  ~Span() {
    double Elapsed = monotonicSeconds() - Start;
    CounterRegistry &R = CounterRegistry::global();
    R.add(Name + ".calls", 1);
    R.addMetric(Name + ".seconds", Elapsed);
  }

private:
  std::string Name;
  double Start;
};

} // namespace obs
} // namespace pbt

#endif // PBT_OBS_SPAN_H

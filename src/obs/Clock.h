//===- obs/Clock.h - The single vetted wall-clock seam ----------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place in src/ where wall-clock time may be read. Every other
/// file is covered by tools/lint_determinism.sh, which bans clock reads
/// outright: simulated results must be bit-reproducible, and the easiest
/// way to guarantee that is to make nondeterministic time impossible to
/// reach from simulation code.
///
/// Plane-2 observability (obs/Counters.h spans, guard watchdog
/// durations, per-pass Seconds) calls monotonicSeconds() instead of
/// std::chrono directly, so the allowlist vouches for exactly one
/// implementation file. Values derived from this clock may only feed
/// artifacts that every byte-identity check excludes (PROFILE_driver
/// .json, the driver's duration fields) — never TRACE_*.json or
/// BENCH_*.json payloads.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_OBS_CLOCK_H
#define PBT_OBS_CLOCK_H

namespace pbt {
namespace obs {

/// Monotonic wall-clock seconds since an arbitrary epoch. Differences
/// are meaningful; absolute values are not.
double monotonicSeconds();

} // namespace obs
} // namespace pbt

#endif // PBT_OBS_CLOCK_H

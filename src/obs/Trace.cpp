//===- obs/Trace.cpp - Deterministic simulated-time event tracing ---------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Counters.h"
#include "support/Env.h"

#include <algorithm>
#include <cstdarg>
#include <mutex>
#include <sys/stat.h>
#include <sys/types.h>

namespace pbt {
namespace obs {

namespace {

/// Process-global trace configuration; written once at startup by the
/// driver/harness, read at sink-open time only (never on hot paths).
/// PBT_TRACE seeds the directory so every binary — standalone
/// experiment, driver, test — honors the environment; an explicit
/// setTraceDir (the driver's --trace flag) overwrites it.
struct TraceGlobal {
  std::mutex Mu;
  std::string Dir;
  std::string Experiment = "adhoc";
  uint64_t NextGroup = 0;

  TraceGlobal() {
    if (const char *Env = envString("PBT_TRACE"))
      if (*Env != '\0')
        Dir = Env;
  }
};

TraceGlobal &traceGlobal() {
  static TraceGlobal G;
  return G;
}

/// Best-effort `mkdir -p`; existing components are fine.
void makeDirs(const std::string &Dir) {
  for (size_t I = 1; I < Dir.size(); ++I)
    if (Dir[I] == '/')
      ::mkdir(Dir.substr(0, I).c_str(), 0777);
  if (!Dir.empty())
    ::mkdir(Dir.c_str(), 0777);
}

/// Minimal JSON string escaping (labels are benchmark/core names, but
/// stay safe on anything).
std::string escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Hex[8];
        std::snprintf(Hex, sizeof Hex, "\\u%04x", C);
        Out += Hex;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

// Track layout (Chrome trace pid/tid are just track group/row ids).
constexpr int CoresPid = 1;
constexpr int ProcsPid = 2;
constexpr int ScenarioPid = 3;

} // namespace

bool traceEnabled() {
  TraceGlobal &G = traceGlobal();
  std::lock_guard<std::mutex> L(G.Mu);
  return !G.Dir.empty();
}

void setTraceDir(const std::string &Dir) {
  TraceGlobal &G = traceGlobal();
  std::lock_guard<std::mutex> L(G.Mu);
  G.Dir = Dir;
}

std::string traceDir() {
  TraceGlobal &G = traceGlobal();
  std::lock_guard<std::mutex> L(G.Mu);
  return G.Dir;
}

void setTraceExperiment(const std::string &Name) {
  TraceGlobal &G = traceGlobal();
  std::lock_guard<std::mutex> L(G.Mu);
  G.Experiment = Name;
  G.NextGroup = 0;
}

uint64_t beginTraceGroup() {
  TraceGlobal &G = traceGlobal();
  std::lock_guard<std::mutex> L(G.Mu);
  return G.NextGroup++;
}

std::unique_ptr<TraceSink> TraceSink::openForUnit(const std::string &UnitId,
                                                  uint64_t Group) {
  std::string Dir, Exp;
  {
    TraceGlobal &G = traceGlobal();
    std::lock_guard<std::mutex> L(G.Mu);
    if (G.Dir.empty())
      return nullptr;
    Dir = G.Dir;
    Exp = G.Experiment;
  }
  makeDirs(Dir);
  // Unit ids are paths like "cell/t0/w1/s0/c2/n0"; flatten for the
  // file name so every unit lands in one flat directory.
  std::string Unit = UnitId;
  std::replace(Unit.begin(), Unit.end(), '/', '-');
  char Name[256];
  std::snprintf(Name, sizeof Name, "TRACE_%s.g%llu.%s.json", Exp.c_str(),
                static_cast<unsigned long long>(Group), Unit.c_str());
  return openAt(Dir + "/" + Name);
}

std::unique_ptr<TraceSink> TraceSink::openAt(const std::string &Path) {
  std::FILE *Out = std::fopen(Path.c_str(), "wb");
  if (!Out) {
    std::fprintf(stderr, "[obs] cannot open trace file %s; tracing off\n",
                 Path.c_str());
    return nullptr;
  }
  CounterRegistry::global().add("trace.sinks", 1);
  return std::unique_ptr<TraceSink>(new TraceSink(Out, Path));
}

TraceSink::TraceSink(std::FILE *Out, std::string Path)
    : Out(Out), Path(std::move(Path)) {
  Buf.reserve(bufferCapacity() + 1024);
  Buf += "{\"traceEvents\": [";
  beginEvent();
  appendf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
          "\"args\":{\"name\":\"cores\"}}",
          CoresPid);
  endEvent();
  beginEvent();
  appendf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
          "\"args\":{\"name\":\"processes\"}}",
          ProcsPid);
  endEvent();
  beginEvent();
  appendf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
          "\"args\":{\"name\":\"scenario\"}}",
          ScenarioPid);
  endEvent();
}

TraceSink::~TraceSink() {
  Buf += "\n]}\n";
  Peak = std::max(Peak, Buf.size());
  flush();
  std::fclose(Out);
}

void TraceSink::appendf(const char *Fmt, ...) {
  char Tmp[512];
  std::va_list Ap;
  va_start(Ap, Fmt);
  int N = std::vsnprintf(Tmp, sizeof Tmp, Fmt, Ap);
  va_end(Ap);
  if (N > 0)
    Buf.append(Tmp, std::min(static_cast<size_t>(N), sizeof Tmp - 1));
}

void TraceSink::beginEvent() {
  Buf += First ? "\n  " : ",\n  ";
  First = false;
}

void TraceSink::endEvent() {
  CounterRegistry::global().add("trace.events", 1);
  Peak = std::max(Peak, Buf.size());
  if (Buf.size() >= bufferCapacity())
    flush();
}

void TraceSink::flush() {
  if (Buf.empty())
    return;
  std::fwrite(Buf.data(), 1, Buf.size(), Out);
  CounterRegistry::global().add("trace.bytes", Buf.size());
  Buf.clear();
}

void TraceSink::coreTrack(uint32_t Core, const std::string &Label) {
  beginEvent();
  appendf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%u,"
          "\"args\":{\"name\":\"%s\"}}",
          CoresPid, Core, escape(Label).c_str());
  endEvent();
}

void TraceSink::machineTrack(uint32_t Tid) {
  MachineTid = Tid;
  beginEvent();
  appendf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%u,"
          "\"args\":{\"name\":\"machine\"}}",
          CoresPid, Tid);
  endEvent();
}

void TraceSink::processTrack(uint32_t Pid, const std::string &Label) {
  beginEvent();
  appendf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%u,"
          "\"args\":{\"name\":\"%s\"}}",
          ProcsPid, Pid, escape(Label).c_str());
  endEvent();
}

void TraceSink::spawn(double Ts, uint32_t Pid, uint32_t Core,
                      int32_t Slot) {
  beginEvent();
  appendf("{\"name\":\"spawn\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
          "\"tid\":%u,\"ts\":%.12g,\"args\":{\"core\":%u,\"slot\":%d}}",
          ProcsPid, Pid, Ts, Core, Slot);
  endEvent();
}

void TraceSink::exitProcess(double Ts, uint32_t Pid, uint64_t Insts) {
  beginEvent();
  appendf("{\"name\":\"exit\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
          "\"tid\":%u,\"ts\":%.12g,\"args\":{\"insts\":%llu}}",
          ProcsPid, Pid, Ts, static_cast<unsigned long long>(Insts));
  endEvent();
}

void TraceSink::window(double Ts, double Dur, uint32_t Core, uint32_t Pid,
                       uint64_t Insts) {
  beginEvent();
  appendf("{\"name\":\"p%u\",\"ph\":\"X\",\"pid\":%d,\"tid\":%u,"
          "\"ts\":%.12g,\"dur\":%.12g,\"args\":{\"proc\":%u,\"insts\":%llu}}",
          Pid, CoresPid, Core, Ts, Dur, Pid,
          static_cast<unsigned long long>(Insts));
  endEvent();
  beginEvent();
  appendf("{\"name\":\"core%u\",\"ph\":\"X\",\"pid\":%d,\"tid\":%u,"
          "\"ts\":%.12g,\"dur\":%.12g,\"args\":{\"core\":%u,\"insts\":%llu}}",
          Core, ProcsPid, Pid, Ts, Dur, Core,
          static_cast<unsigned long long>(Insts));
  endEvent();
}

void TraceSink::migrate(double Ts, uint32_t Pid, uint32_t From,
                        uint32_t To) {
  beginEvent();
  appendf("{\"name\":\"migrate\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
          "\"tid\":%u,\"ts\":%.12g,\"args\":{\"from\":%u,\"to\":%u}}",
          ProcsPid, Pid, Ts, From, To);
  endEvent();
}

void TraceSink::reassign(double Ts, uint32_t Pid, uint32_t From,
                         uint32_t To, double Ipc) {
  beginEvent();
  appendf("{\"name\":\"reassign\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
          "\"tid\":%u,\"ts\":%.12g,"
          "\"args\":{\"from\":%u,\"to\":%u,\"ipc\":%.4g}}",
          ProcsPid, Pid, Ts, From, To, Ipc);
  endEvent();
}

void TraceSink::balance(double Ts) {
  beginEvent();
  appendf("{\"name\":\"balance\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
          "\"tid\":%u,\"ts\":%.12g}",
          CoresPid, MachineTid, Ts);
  endEvent();
}

void TraceSink::inject(double Ts) {
  beginEvent();
  appendf("{\"name\":\"inject\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
          "\"tid\":%u,\"ts\":%.12g}",
          CoresPid, MachineTid, Ts);
  endEvent();
}

void TraceSink::arrival(double Ts, uint32_t Bench) {
  beginEvent();
  appendf("{\"name\":\"arrival\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
          "\"tid\":0,\"ts\":%.12g,\"args\":{\"bench\":%u}}",
          ScenarioPid, Ts, Bench);
  endEvent();
}

void TraceSink::admit(double Ts, uint32_t Pid, uint32_t Bench) {
  beginEvent();
  appendf("{\"name\":\"admit\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
          "\"tid\":0,\"ts\":%.12g,\"args\":{\"pid\":%u,\"bench\":%u}}",
          ScenarioPid, Ts, Pid, Bench);
  endEvent();
}

void TraceSink::complete(double Ts, uint32_t Pid, uint32_t Bench) {
  beginEvent();
  appendf("{\"name\":\"complete\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
          "\"tid\":0,\"ts\":%.12g,\"args\":{\"pid\":%u,\"bench\":%u}}",
          ScenarioPid, Ts, Pid, Bench);
  endEvent();
}

void TraceSink::runEnd(double Ts, uint64_t Completed, uint64_t Spawned) {
  beginEvent();
  appendf("{\"name\":\"run_end\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
          "\"tid\":0,\"ts\":%.12g,"
          "\"args\":{\"completed\":%llu,\"spawned\":%llu}}",
          ScenarioPid, Ts, static_cast<unsigned long long>(Completed),
          static_cast<unsigned long long>(Spawned));
  endEvent();
}

} // namespace obs
} // namespace pbt

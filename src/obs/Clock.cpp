//===- obs/Clock.cpp - The single vetted wall-clock seam ------------------===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Clock.h"

#include <chrono>

namespace pbt {
namespace obs {

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace obs
} // namespace pbt

//===- obs/Counters.h - Unified fabric counter registry ---------*- C++ -*-===//
//
// Part of the phase-based-tuning reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Plane 2 of the observability subsystem: one process-wide registry of
/// named counters (monotonic uint64) and metrics (double, e.g. seconds)
/// that absorbs the fabric's formerly scattered statistics — suite-cache
/// hits/misses, CacheStore prog/lock/quarantine counts, guard
/// attempts/timeouts, per-pass PassStats, shard/merge stats, trace-sink
/// I/O. Components either increment the registry directly at runtime
/// (fabric events, spans) or are imported at dump time by the driver
/// (per-lab cache counters), and the whole registry is snapshot into
/// PROFILE_driver.json and the `driver --report` table.
///
/// Names are dot-namespaced ("suite_cache.hits", "guard.timeouts",
/// "pipeline.typing.seconds"); the snapshot is sorted by name, so dumps
/// are stable given equal values. Everything here is wall-clock-tainted
/// or run-order-dependent by design and is excluded from every
/// byte-identity check — Plane 1 (obs/Trace.h) is the deterministic
/// plane.
///
//===----------------------------------------------------------------------===//

#ifndef PBT_OBS_COUNTERS_H
#define PBT_OBS_COUNTERS_H

#include "support/Json.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pbt {
namespace obs {

/// Process-wide named counters and metrics. All operations are
/// thread-safe; counter addresses are stable for the process lifetime,
/// so hot components may cache the `std::atomic` reference and bump it
/// lock-free.
class CounterRegistry {
public:
  static CounterRegistry &global();

  /// The counter named \p Name, created at zero on first use. The
  /// returned reference never moves or dies.
  std::atomic<uint64_t> &counter(const std::string &Name);

  /// Adds \p Delta to counter \p Name.
  void add(const std::string &Name, uint64_t Delta = 1) {
    counter(Name).fetch_add(Delta, std::memory_order_relaxed);
  }
  /// Overwrites counter \p Name (dump-time imports of externally
  /// aggregated totals).
  void set(const std::string &Name, uint64_t Value) {
    counter(Name).store(Value, std::memory_order_relaxed);
  }
  /// Current value of \p Name; 0 if it was never touched.
  uint64_t value(const std::string &Name) const;

  /// Adds \p Delta to the double-valued metric \p Name (span seconds).
  void addMetric(const std::string &Name, double Delta);
  /// Overwrites metric \p Name.
  void setMetric(const std::string &Name, double Value);
  /// Current value of metric \p Name; 0.0 if never touched.
  double metric(const std::string &Name) const;

  /// Snapshot as {"counters": {name: uint...}, "metrics": {name:
  /// double...}}, members sorted by name.
  Json snapshotJson() const;

  /// Sorted (name, value) snapshots — `driver --report` rendering.
  std::vector<std::pair<std::string, uint64_t>> counterValues() const;
  std::vector<std::pair<std::string, double>> metricValues() const;

  /// Drops every counter and metric (tests only). Entries are erased,
  /// so counter references cached before reset() must not be used
  /// after it.
  void reset();

private:
  mutable std::mutex Mu;
  std::map<std::string, std::unique_ptr<std::atomic<uint64_t>>> Counters;
  std::map<std::string, double> Metrics;
};

} // namespace obs
} // namespace pbt

#endif // PBT_OBS_COUNTERS_H
